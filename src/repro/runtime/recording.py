"""A history-recording wrapper: any backend, post-hoc verified.

Wrapping a backend in :class:`RecordingBackend` captures the complete
multi-version execution history — including the reads of *aborted*
attempts — as a :class:`repro.semantics.History`.  After the run, the
semantics layer can then check:

* **conflict serializability** of the committed transactions
  (acyclicity of ``->_rw`` — the §3.2 iff-condition), with a verified
  serial witness;
* **opacity** (§5.3 footnote 7): every attempt, aborted ones included,
  observed a consistent snapshot — aborted transactions must never
  see impossible states, or zombie executions could fault.

This turns the formalization of section 3 into a runtime oracle for
the systems of section 5: the same code that proves the write-skew
history non-serializable audits arbitrary simulated executions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..semantics import History
from ..semantics.serializability import assert_serializable, explain_cycle
from .api import TransactionAborted
from .backend import TMBackend


class RecordingBackend(TMBackend):
    """Delegates everything to *inner*, recording a History.

    Version attribution matches observed values against committed
    writers' stored values; colliding values can only *under*-report
    anomalies, never invent them, so a failing oracle always means a
    real bug.
    """

    #: recorder bookkeeping mutated on the read/write path by design:
    #: the simulator is single-threaded discrete-event, so recording at
    #: the operation's instant is race-free by construction (TM003).
    _sanitizer_locked = (
        "_writes",
        "_written_values",
        "_current",
        "aborted_attempts",
        "history",
    )

    def __init__(self, inner: TMBackend):
        super().__init__()
        self.inner = inner
        self.name = f"recorded({inner.name})"
        self.metadata_footprint = inner.metadata_footprint
        self.backoff_scale = inner.backoff_scale
        self.history = History()
        self._attempt_id = 0
        self._current: Dict[int, int] = {}
        self._writes: Dict[int, Set[int]] = {}
        self._written_values: Dict[int, Dict[int, Any]] = {}
        self._last_writer: Dict[int, int] = {}
        self._committed_set: Set[int] = set()
        self.aborted_attempts: List[int] = []
        self.committed_attempts: List[int] = []

    def attach(self, simulator) -> None:
        super().attach(simulator)
        self.inner.attach(simulator)

    # ------------------------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        at = self.inner.begin(tid, now)
        self._attempt_id += 1
        attempt = self._attempt_id
        self._current[tid] = attempt
        self._writes[attempt] = set()
        self.history.begin(attempt)
        return at

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        attempt = self._current[tid]
        try:
            value, at = self.inner.read(tid, addr, now)
        except TransactionAborted:
            self._record_abort(tid)
            raise
        if addr not in self._writes[attempt]:
            self.history.read(attempt, addr, version=self._version_of(addr, value))
        return value, at

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        attempt = self._current[tid]
        try:
            at = self.inner.write(tid, addr, value, now)
        except TransactionAborted:
            self._record_abort(tid)
            raise
        self._writes[attempt].add(addr)
        self.history.write(attempt, addr)
        self._written_values.setdefault(addr, {})[attempt] = value
        return at

    def commit(self, tid: int, now: float) -> float:
        attempt = self._current[tid]
        try:
            at = self.inner.commit(tid, now)
        except TransactionAborted:
            self._record_abort(tid)
            raise
        self.history.commit(attempt)
        self.committed_attempts.append(attempt)
        self._committed_set.add(attempt)
        for addr in self._writes[attempt]:
            self._last_writer[addr] = attempt
        self._current.pop(tid, None)
        return at

    def rollback(self, tid: int, now: float, cause: str) -> float:
        # Aborts raised from begin() never opened an attempt; aborts
        # from read/write/commit were recorded when they unwound.
        return self.inner.rollback(tid, now, cause)

    def abort_backoff_scale(self, cause: str) -> float:
        return self.inner.abort_backoff_scale(cause)

    def run_finished(self) -> None:
        self.inner.run_finished()

    # ------------------------------------------------------------------
    def _version_of(self, addr: int, value: Any) -> int:
        last = self._last_writer.get(addr)
        stored = self._written_values.get(addr, {})
        if last is not None and stored.get(last) == value:
            return last
        for attempt in sorted(stored, reverse=True):
            if attempt in self._committed_set and stored[attempt] == value:
                return attempt
        return -1  # the initial version

    def _record_abort(self, tid: int) -> None:
        attempt = self._current.pop(tid, None)
        if attempt is not None:
            self.history.abort(attempt)
            self.aborted_attempts.append(attempt)

    def _finish_stragglers(self) -> None:
        for tid in list(self._current):
            self._record_abort(tid)

    # ------------------------------------------------------------------
    # Post-run oracles
    # ------------------------------------------------------------------
    def verify_serializable(self) -> List[int]:
        """Assert committed attempts are conflict-serializable; returns
        the verified serial witness (attempt ids)."""
        self._finish_stragglers()
        return assert_serializable(self.history)

    def check_serializable(self) -> Optional[List[int]]:
        """Like :meth:`verify_serializable` but returns None on failure
        instead of raising (for negative tests, e.g. against SI)."""
        self._finish_stragglers()
        rw = self.history.rw_dependencies()
        if explain_cycle(rw) is not None:
            return None
        return rw.topological_order()

    def verify_opacity(self) -> None:
        """Every attempt — aborted ones included — read a consistent
        snapshot: grafting the attempt into the committed history as a
        read-only observer must keep the dependencies acyclic.
        (Aborted writes never installed versions, so only the reads
        contribute edges.)"""
        self._finish_stragglers()
        committed = set(self.history.committed)
        for attempt in self.aborted_attempts:
            if not self.history.record(attempt).reads:
                continue
            rw = self.history.rw_dependencies(committed | {attempt})
            cycle = explain_cycle(rw)
            if cycle and attempt in cycle:
                raise AssertionError(
                    f"opacity violation: aborted attempt {attempt} observed "
                    f"an inconsistent snapshot (cycle {cycle})"
                )
