"""History recording as an event-bus subscriber: any run, post-hoc verified.

:class:`HistoryRecorder` subscribes to a simulator's
:class:`~repro.runtime.events.EventBus` and rebuilds the complete
multi-version execution history — including the reads of *aborted*
attempts — as a :class:`repro.semantics.History`.  After the run, the
semantics layer can then check:

* **conflict serializability** of the committed transactions
  (acyclicity of ``->_rw`` — the §3.2 iff-condition), with a verified
  serial witness;
* **opacity** (§5.3 footnote 7): every attempt, aborted ones included,
  observed a consistent snapshot — aborted transactions must never
  see impossible states, or zombie executions could fault.

This turns the formalization of section 3 into a runtime oracle for
the systems of section 5: the same code that proves the write-skew
history non-serializable audits arbitrary simulated executions.

:class:`RecordingBackend` is the composition shim: wrapping a backend
keeps the established ``RecordingBackend(inner)`` construction (and
lets the recorder piggyback on ``attach``), but the wrapper's five
hooks are now pure delegation — all observation flows through the bus,
one instrumentation path shared with statistics and the sanitizer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..semantics import History
from ..semantics.serializability import assert_serializable, explain_cycle
from .backend import TMBackend
from .events import EventBus, SimEvent


class HistoryRecorder:
    """Rebuilds a :class:`History` from the simulator's event stream.

    Attempt ids are minted here, on ``begin`` events, exactly as the
    old hook-intercepting recorder minted them in ``begin()`` — so the
    attempt vocabulary (1, 2, 3, ... in begin order, pseudo-attempts
    interleaved) is unchanged.  Version attribution matches observed
    values against committed writers' stored values; colliding values
    can only *under*-report anomalies, never invent them, so a failing
    oracle always means a real bug.
    """

    KINDS = ("begin", "read", "write", "commit", "abort")

    def __init__(self) -> None:
        self.history = History()
        self._attempt_id = 0
        self._current: Dict[int, int] = {}
        self._writes: Dict[int, Set[int]] = {}
        #: addr -> {attempt: stored value} (for version attribution).
        self.written_values: Dict[int, Dict[int, Any]] = {}
        #: addr -> last committed writer (for the write-back oracle).
        self.last_writer: Dict[int, int] = {}
        self._committed_set: Set[int] = set()
        self.aborted_attempts: List[int] = []
        self.committed_attempts: List[int] = []
        #: version observed by the most recent read event (the
        #: attempt's own id for read-own-write) — consumed by the
        #: sanitizer's log subscriber, which runs right after us.
        self.last_read_version: Optional[int] = None

    def install(self, bus: EventBus) -> None:
        bus.subscribe(self._on_event, kinds=self.KINDS)

    # ------------------------------------------------------------------
    def attempt_of(self, tid: int) -> Optional[int]:
        """The open attempt id of thread *tid* (None outside txns)."""
        return self._current.get(tid)

    def new_attempt_id(self) -> int:
        self._attempt_id += 1
        return self._attempt_id

    # ------------------------------------------------------------------
    def _on_event(self, event: SimEvent) -> None:
        kind = event.kind
        if kind == "begin":
            self._on_begin(event)
        elif kind == "read":
            self._on_read(event)
        elif kind == "write":
            self._on_write(event)
        elif kind == "commit":
            self._on_commit(event)
        else:  # abort
            self._on_abort(event)

    def _on_begin(self, event: SimEvent) -> None:
        attempt = event.attempt
        if attempt is None:
            attempt = self.new_attempt_id()
        else:  # explicit ids (trace replays): keep the counter ahead.
            self._attempt_id = max(self._attempt_id, attempt)
        self._current[event.tid] = attempt
        self._writes[attempt] = set()
        self.history.begin(attempt)

    def _on_read(self, event: SimEvent) -> None:
        attempt = self._current.get(event.tid)
        if attempt is None:  # read outside any attempt: not ours.
            return
        if event.addr in self._writes[attempt]:
            # Read-own-write, served from the write buffer: no
            # inter-transaction dependency.
            self.last_read_version = attempt
            return
        version = event.version
        if version is None:
            version = self._version_of(event.addr, event.value)
        self.history.read(attempt, event.addr, version=version)
        self.last_read_version = version

    def _on_write(self, event: SimEvent) -> None:
        attempt = self._current.get(event.tid)
        if attempt is None:
            return
        self._writes[attempt].add(event.addr)
        self.history.write(attempt, event.addr)
        self.written_values.setdefault(event.addr, {})[attempt] = event.value

    def _on_commit(self, event: SimEvent) -> None:
        attempt = self._current.pop(event.tid, None)
        if attempt is None:
            return
        self.history.commit(attempt)
        self.committed_attempts.append(attempt)
        self._committed_set.add(attempt)
        for addr in self._writes[attempt]:
            self.last_writer[addr] = attempt

    def _on_abort(self, event: SimEvent) -> None:
        if not event.began:
            # Aborts raised from begin() never opened an attempt.
            return
        self.close_attempt(event.tid)

    # ------------------------------------------------------------------
    def record_direct_commit(self, batch: Dict[int, Any]) -> int:
        """Fold a batch of direct (non-transactional) stores into the
        history as one committed pseudo-transaction; returns its
        attempt id.  See the sanitizer for why this is the correct
        semantics of a quiesced phase boundary."""
        attempt = self.new_attempt_id()
        self.history.begin(attempt)
        for addr, value in sorted(batch.items()):
            self.history.write(attempt, addr)
            self.written_values.setdefault(addr, {})[attempt] = value
        self.history.commit(attempt)
        self._committed_set.add(attempt)
        for addr in batch:
            self.last_writer[addr] = attempt
        return attempt

    def close_attempt(self, tid: int) -> None:
        """Abort whatever attempt *tid* has open (no-op otherwise)."""
        attempt = self._current.pop(tid, None)
        if attempt is not None:
            self.history.abort(attempt)
            self.aborted_attempts.append(attempt)

    def finish_stragglers(self) -> None:
        for tid in list(self._current):
            self.close_attempt(tid)

    # ------------------------------------------------------------------
    def _version_of(self, addr: int, value: Any) -> int:
        last = self.last_writer.get(addr)
        stored = self.written_values.get(addr, {})
        if last is not None and stored.get(last) == value:
            return last
        for attempt in sorted(stored, reverse=True):
            if attempt in self._committed_set and stored[attempt] == value:
                return attempt
        return -1  # the initial version

    # ------------------------------------------------------------------
    # Post-run oracles
    # ------------------------------------------------------------------
    def verify_serializable(self) -> List[int]:
        """Assert committed attempts are conflict-serializable; returns
        the verified serial witness (attempt ids)."""
        self.finish_stragglers()
        return assert_serializable(self.history)

    def check_serializable(self) -> Optional[List[int]]:
        """Like :meth:`verify_serializable` but returns None on failure
        instead of raising (for negative tests, e.g. against SI)."""
        self.finish_stragglers()
        rw = self.history.rw_dependencies()
        if explain_cycle(rw) is not None:
            return None
        return rw.topological_order()

    def verify_opacity(self) -> None:
        """Every attempt — aborted ones included — read a consistent
        snapshot: grafting the attempt into the committed history as a
        read-only observer must keep the dependencies acyclic.
        (Aborted writes never installed versions, so only the reads
        contribute edges.)"""
        self.finish_stragglers()
        committed = set(self.history.committed)
        for attempt in self.aborted_attempts:
            if not self.history.record(attempt).reads:
                continue
            rw = self.history.rw_dependencies(committed | {attempt})
            cycle = explain_cycle(rw)
            if cycle and attempt in cycle:
                raise AssertionError(
                    f"opacity violation: aborted attempt {attempt} observed "
                    f"an inconsistent snapshot (cycle {cycle})"
                )


class RecordingBackend(TMBackend):
    """Delegates everything to *inner*; recording rides the event bus.

    The wrapper exists for composition — ``RecordingBackend(inner)``
    is how call sites opt a run into history recording — but observes
    nothing itself: ``attach`` subscribes a :class:`HistoryRecorder`
    to the simulator's bus and the five hooks below are verbatim
    pass-throughs.
    """

    def __init__(self, inner: TMBackend):
        super().__init__()
        self.inner = inner
        self.name = f"recorded({inner.name})"
        self.metadata_footprint = inner.metadata_footprint
        self.backoff_scale = inner.backoff_scale
        self.recorder = HistoryRecorder()

    def attach(self, simulator) -> None:
        super().attach(simulator)
        self.inner.attach(simulator)
        self.recorder.install(simulator.bus)

    # -- pure delegation ------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        return self.inner.begin(tid, now)

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        return self.inner.read(tid, addr, now)

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        return self.inner.write(tid, addr, value, now)

    def commit(self, tid: int, now: float) -> float:
        return self.inner.commit(tid, now)

    def rollback(self, tid: int, now: float, cause: str) -> float:
        return self.inner.rollback(tid, now, cause)

    def abort_backoff_scale(self, cause: str) -> float:
        return self.inner.abort_backoff_scale(cause)

    def local_threads(self, tid: int) -> int:
        return self.inner.local_threads(tid)

    def run_finished(self) -> None:
        self.inner.run_finished()

    # -- recorder façade (the established oracle surface) ---------------
    @property
    def history(self) -> History:
        return self.recorder.history

    @property
    def aborted_attempts(self) -> List[int]:
        return self.recorder.aborted_attempts

    @property
    def committed_attempts(self) -> List[int]:
        return self.recorder.committed_attempts

    def verify_serializable(self) -> List[int]:
        return self.recorder.verify_serializable()

    def check_serializable(self) -> Optional[List[int]]:
        return self.recorder.check_serializable()

    def verify_opacity(self) -> None:
        self.recorder.verify_opacity()

    def _finish_stragglers(self) -> None:
        self.recorder.finish_stragglers()
