"""Kahn-style online topological sorting as a CC algorithm (§4.1).

The paper observes that prior work adapts Kahn's topological-sorting
algorithm for online cycle detection, and that doing so "is equivalent
to TOCC [and] suffers the phantom ordering since it presumes a linear
order on a DAG during its traversal".

This module makes that claim executable.  Kahn's algorithm outputs
vertices in a fixed linear order, never revisiting earlier output; an
online validator built on it can only *append* a committing
transaction to the end of the order.  A transaction is appendable iff
it has no outgoing dependency edge into the already-output prefix —
i.e. iff it read no version that a committed transaction later
overwrote.  That is precisely commit-time TOCC's abort condition, so
:class:`KahnCC` must make identical decisions to
:class:`~repro.cc.tocc.ToccCommitTime` on every trace — a property the
test-suite asserts.
"""

from __future__ import annotations

from typing import List, Sequence

from .engine import CommittedTxn, TraceCC, TxnView


class KahnCC(TraceCC):
    name = "Kahn"

    def __init__(self, concurrency: int, read_placement: str = "start"):
        super().__init__(concurrency, read_placement)
        self._order: List[int] = []  # the Kahn output (commit order)

    def run(self, trace, observer=None, bus=None):  # type: ignore[override]
        self._order = []
        return super().run(trace, observer=observer, bus=bus)

    def validate(self, view: TxnView, committed: Sequence[CommittedTxn]) -> bool:
        # Appendable iff no outgoing edge into the emitted prefix: an
        # outgoing edge exists exactly when some committed transaction
        # overwrote a version this one observed (WAR from us to them).
        for prior in self.overlapping(view, committed):
            write_set = prior.view.write_set
            if not write_set:
                continue
            for read in view.reads:
                if read.addr in write_set and read.version_time < prior.view.commit_time:
                    return False  # would need to precede emitted output
        return True

    def on_commit(self, view: TxnView) -> None:
        self._order.append(view.txn)

    @property
    def emitted_order(self) -> List[int]:
        """The linear order Kahn's traversal has presumed so far."""
        return list(self._order)
