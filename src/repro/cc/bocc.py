"""Backward OCC (Härder 1984; §2.3's broadcast-based centralization).

BOCC validates a committing transaction *backwards*: its read set is
intersected with the write sets of every transaction that committed
during its execution.  Any overlap aborts — including the benign case
where the read in fact happened *after* the writer's commit and saw
the fresh value, which TOCC's version check forgives.  The comparison
is set-based because BOCC was designed for broadcast systems where
only footprints, not versions, travel.
"""

from __future__ import annotations

from typing import Sequence

from .engine import CommittedTxn, TraceCC, TxnView


class BackwardOCC(TraceCC):
    name = "BOCC"

    def validate(self, view: TxnView, committed: Sequence[CommittedTxn]) -> bool:
        read_set = view.read_set
        if not read_set:
            return True
        for prior in self.overlapping(view, committed):
            if read_set & prior.view.write_set:
                return False
        return True
