"""2PL with abort-on-conflict (the paper's PCC baseline).

Under two-phase locking every object is locked from a transaction's
first access until its commit (section 2.2): "an object that is locked
by a transaction's execution phase cannot be accessed by another one,
until it is released during the commit phase of the first transaction".
Readers take shared locks, writers exclusive locks.  The HTM analogue
the paper evaluates (Intel TSX) *aborts* rather than blocks on lock
conflict, so our trace model aborts the later accessor — Fig. 1's
``t2`` is exactly such a victim.

In the timed trace model, transaction *i* conflicts with a committed
overlapping transaction *j* on object *x* when both access *x*, at
least one writes it, and *j*'s first access of *x* precedes *i*'s
(the lock was already held and is released only at ``c_j > a_i``).
"""

from __future__ import annotations

from typing import Dict, Sequence

from .engine import CommittedTxn, TraceCC, TxnView


class TwoPhaseLocking(TraceCC):
    name = "2PL"

    def validate(self, view: TxnView, committed: Sequence[CommittedTxn]) -> bool:
        my_access: Dict[int, tuple] = {}
        for read in view.reads:
            if read.addr not in my_access:
                my_access[read.addr] = (read.time, False)
        for write in view.writes:
            prior = my_access.get(write.addr)
            if prior is None:
                my_access[write.addr] = (write.time, True)
            else:
                # Lock upgrade: exclusive from the write's time on, but
                # the shared lock was held since the first read.
                my_access[write.addr] = (prior[0], True)

        for prior in self.overlapping(view, committed):
            their_access = self._first_access(prior.view)
            for addr, (my_time, i_write) in my_access.items():
                theirs = their_access.get(addr)
                if theirs is None:
                    continue
                their_time, they_write = theirs
                if not (i_write or they_write):
                    continue  # shared/shared never conflicts
                # Conflicting lock intervals on the same object: one of
                # the two transactions must die.  The model processes
                # transactions in commit order and the prior one already
                # committed, so the validating transaction is always the
                # victim — regardless of who locked first (if we locked
                # first, real 2PL would have killed the other *before*
                # its commit; charging the abort to us keeps the abort
                # count right while staying serializable).
                if their_time < view.commit_time and my_time < prior.view.commit_time:
                    return False
        return True

    @staticmethod
    def _first_access(view: TxnView) -> Dict[int, tuple]:
        access: Dict[int, tuple] = {}
        for read in view.reads:
            if read.addr not in access:
                access[read.addr] = (read.time, False)
        for write in view.writes:
            prior = access.get(write.addr)
            if prior is None:
                access[write.addr] = (write.time, True)
            else:
                access[write.addr] = (prior[0], True)
        return access
