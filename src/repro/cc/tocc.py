"""Timestamped OCC — the paper's main OCC baseline (§2.3, Fig. 2).

TOCC serializes committed transactions in timestamp order and aborts
any transaction whose reads are inconsistent with that order.  Two
variants differ in *when* the timestamp is acquired:

* **Start-time** (Fig. 2(a), e.g. DATM-style): the transaction must
  serialize at its start.  It aborts if any read observed a version
  committed after its start (the version "has a greater timestamp"),
  or if a read was overwritten before its commit.
* **Commit-time / LSA** (Fig. 2(b), TinySTM-style): the transaction
  serializes at its commit, taking the largest timestamp.  It aborts
  iff some object it read has a newer committed version by commit time
  — i.e. it *neglected* a concurrent committed update.

Both are sufficient for serializability but suffer phantom orderings:
they abort transactions ROCoCo can commit by serializing them *before*
already-committed peers (section 3.1).
"""

from __future__ import annotations

from typing import Sequence

from .engine import CommittedTxn, TraceCC, TxnView


class ToccCommitTime(TraceCC):
    """Lazy-snapshot (LSA) TOCC: timestamp acquired at validation."""

    name = "TOCC"

    def validate(self, view: TxnView, committed: Sequence[CommittedTxn]) -> bool:
        for prior in self.overlapping(view, committed):
            their_writes = prior.view.write_set
            for read in view.reads:
                if read.addr in their_writes and read.version_time < prior.view.commit_time:
                    # The prior transaction overwrote this object after
                    # we read it: our snapshot misses a committed
                    # update, so we cannot take the latest timestamp.
                    return False
        return True


class ToccStartTime(TraceCC):
    """Eager-timestamp TOCC: the transaction serializes at its start."""

    name = "TOCC-start"

    def validate(self, view: TxnView, committed: Sequence[CommittedTxn]) -> bool:
        # Reads of versions committed after our start violate the
        # start-order immediately (Fig. 2(a)).
        for read in view.reads:
            if read.version_time > view.start:
                return False
        # And stale reads violate it at commit, as in the lazy variant.
        for prior in self.overlapping(view, committed):
            their_writes = prior.view.write_set
            for read in view.reads:
                if read.addr in their_writes and read.version_time < prior.view.commit_time:
                    return False
        return True
