"""ROCoCo driven by the trace model (the Fig. 9 contender).

Unlike TOCC, the validator serializes a transaction anywhere the
dependency DAG allows, so it needs exact dependency *edges* rather
than a timestamp comparison.  Edges between the candidate and the
committed set are derived from the timed reads/writes:

* **forward** (candidate must precede): every committed writer that
  overwrote a version the candidate read (WAR where the candidate is
  the stale reader);
* **backward** (candidate must follow): the writer of each version the
  candidate observed (RAW), the previous writer of everything the
  candidate writes (WAW), and every committed reader of the *current*
  version of everything the candidate writes (WAR).

Bookkeeping keeps only the edges whose transitive closure equals the
closure of the full dependency relation: WAW edges chain through the
per-location version list, earlier readers already point at the
intermediate writers, so per location we only track readers since the
last write.  The property tests check this equivalence against a
ground-truth graph.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..core.reachability import ReachabilityClosure, ValidationResult
from .engine import INITIAL, CommittedTxn, TraceCC, TxnView


class RococoCC(TraceCC):
    name = "ROCoCo"

    def __init__(self, concurrency: int, window: int = 0, read_placement: str = "start"):
        """``window`` bounds the closure like the FPGA does; 0 means
        unbounded (the pure-algorithm setting of Fig. 9)."""
        super().__init__(concurrency, read_placement)
        self.window = window
        self._reset()

    def _reset(self) -> None:
        self.closure = ReachabilityClosure()
        #: per address: [(commit_time, closure_index)], append-only.
        self._writers: Dict[int, List[Tuple[float, int]]] = {}
        #: per address: closure indices reading the current version.
        self._readers: Dict[int, Set[int]] = {}
        #: per committed view, its closure index (by txn id).
        self._index: Dict[int, int] = {}
        self._pending: Dict[int, ValidationResult] = {}

    def run(self, trace, observer=None, bus=None):  # type: ignore[override]
        self._reset()
        return super().run(trace, observer=observer, bus=bus)

    # ------------------------------------------------------------------
    def validate(self, view: TxnView, committed: Sequence[CommittedTxn]) -> bool:
        forward = 0
        backward = 0
        for read in view.reads:
            writers = self._writers.get(read.addr, ())
            for commit_time, index in reversed(writers):
                if commit_time > read.version_time:
                    forward |= 1 << index
                else:
                    break
            if read.version != INITIAL:
                idx = self._index.get(read.version)
                if idx is not None:
                    backward |= 1 << idx
        for write in view.writes:
            writers = self._writers.get(write.addr, ())
            if writers:
                backward |= 1 << writers[-1][1]
            for reader in self._readers.get(write.addr, ()):
                backward |= 1 << reader

        if self.window and len(self.closure) >= self.window:
            # Bounded mode: edges to evicted prefix cannot be tracked;
            # conservatively abort stale snapshots (window overflow).
            boundary = len(self.closure) - self.window
            if forward & ((1 << boundary) - 1):
                return False

        result = self.closure.validate(forward, backward)
        if not result.ok:
            return False
        self._pending[view.txn] = result
        return True

    def on_commit(self, view: TxnView) -> None:
        result = self._pending.pop(view.txn)
        index = self.closure.commit(result, label=view.txn)
        self._index[view.txn] = index

        for read in view.reads:
            writers = self._writers.get(read.addr)
            current_time = writers[-1][0] if writers else 0.0
            if read.version_time >= current_time:
                # Still the current version: future writers of this
                # address owe us a WAR edge.
                self._readers.setdefault(read.addr, set()).add(index)
        for write in view.writes:
            self._writers.setdefault(write.addr, []).append((view.commit_time, index))
            self._readers[write.addr] = set()
