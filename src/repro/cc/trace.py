"""The EigenBench-like micro-benchmark of section 6.1.

The paper isolates concurrency control from the rest of the TM stack
with memory traces from a synthetic benchmark: an array of 1024
locations, transactions of N accesses (50% read / 50% write) drawn
uniformly at random, and a concurrency parameter T — "the tentative
updates of the last T transactions, no matter they commit or not, are
not visible to current transactions".

We realize that model with explicit time: transaction *i* occupies the
interval ``[i, i + T)``; its operations are spread uniformly inside
the interval, and its commit point is the interval's end.  Then the
T - 1 preceding transactions are exactly the ones whose updates may be
invisible, and a read observes the newest version committed before the
read's own timestamp — which also lets us distinguish "read the stale
version" from "read the fresh version", the distinction BOCC misses
and TOCC needs.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

DEFAULT_LOCATIONS = 1024


class OpKind(enum.Enum):
    READ = "R"
    WRITE = "W"


@dataclass(frozen=True)
class Op:
    kind: OpKind
    addr: int


@dataclass(frozen=True)
class TxnTrace:
    """One transaction's operation list (program order)."""

    txn: int
    ops: Tuple[Op, ...]

    @property
    def read_set(self) -> frozenset:
        return frozenset(op.addr for op in self.ops if op.kind is OpKind.READ)

    @property
    def write_set(self) -> frozenset:
        return frozenset(op.addr for op in self.ops if op.kind is OpKind.WRITE)

    @property
    def is_read_only(self) -> bool:
        return not self.write_set


@dataclass(frozen=True)
class Trace:
    """A whole micro-benchmark run: transactions in arrival order."""

    transactions: Tuple[TxnTrace, ...]
    locations: int

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[TxnTrace]:
        return iter(self.transactions)


def generate_trace(
    n_txns: int,
    ops_per_txn: int,
    locations: int = DEFAULT_LOCATIONS,
    read_fraction: float = 0.5,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> Trace:
    """Random trace with the paper's parameters.

    Each transaction accesses ``ops_per_txn`` *distinct* locations
    (the paper's "accesses N memory locations"), each independently a
    read with probability ``read_fraction``.

    Randomness is injected: all draws come from *rng*, defaulting to a
    fresh ``random.Random(seed)``.  Module-level ``random`` functions
    are never used (TM001, the sanitizer's determinism lint), so a
    trace is a pure function of its arguments — which is what makes
    recorded executions exactly replayable.
    """
    if ops_per_txn > locations:
        raise ValueError("cannot draw more distinct locations than exist")
    if rng is None:
        rng = random.Random(seed)
    txns = []
    for txn in range(n_txns):
        addrs = rng.sample(range(locations), ops_per_txn)
        ops = tuple(
            Op(OpKind.READ if rng.random() < read_fraction else OpKind.WRITE, addr)
            for addr in addrs
        )
        txns.append(TxnTrace(txn, ops))
    return Trace(tuple(txns), locations)


def collision_probability(ops_per_txn: int, locations: int = DEFAULT_LOCATIONS) -> float:
    """The paper's closed form: P(at least one shared location between
    two transactions) = 1 - (1 - N/L)^N."""
    return 1.0 - (1.0 - ops_per_txn / locations) ** ops_per_txn
