"""Trace-level concurrency control algorithms (paper §2.2-2.3, §6.1).

These classes replay the EigenBench-like micro-benchmark traces of
section 6.1 under a shared timed-concurrency model and report abort
rates — the Fig. 9 comparison.  The contenders:

* :class:`TwoPhaseLocking` — pessimistic, abort-on-lock-conflict.
* :class:`BackwardOCC` / :class:`ForwardOCC` — classic broadcast OCC.
* :class:`ToccStartTime` / :class:`ToccCommitTime` — timestamped OCC
  with eager (Fig. 2a) and lazy/LSA (Fig. 2b) timestamp acquisition.
* :class:`KahnCC` — online Kahn topological sorting (§4.1's
  "equivalent to TOCC" observation, made executable).
* :class:`RococoCC` — the paper's reachability-based validator.
"""

from .bocc import BackwardOCC
from .engine import (
    INITIAL,
    CommittedTxn,
    TimedRead,
    TimedWrite,
    TraceCC,
    TraceResult,
    TxnView,
    VersionStore,
)
from .focc import ForwardOCC
from .kahn import KahnCC
from .rococo_cc import RococoCC
from .tocc import ToccCommitTime, ToccStartTime
from .trace import (
    DEFAULT_LOCATIONS,
    Op,
    OpKind,
    Trace,
    TxnTrace,
    collision_probability,
    generate_trace,
)
from .two_phase_locking import TwoPhaseLocking

ALL_ALGORITHMS = (
    TwoPhaseLocking,
    BackwardOCC,
    ForwardOCC,
    ToccStartTime,
    ToccCommitTime,
    RococoCC,
)

__all__ = [
    "ALL_ALGORITHMS",
    "BackwardOCC",
    "CommittedTxn",
    "DEFAULT_LOCATIONS",
    "ForwardOCC",
    "INITIAL",
    "KahnCC",
    "Op",
    "OpKind",
    "RococoCC",
    "TimedRead",
    "TimedWrite",
    "ToccCommitTime",
    "ToccStartTime",
    "Trace",
    "TraceCC",
    "TraceResult",
    "TwoPhaseLocking",
    "TxnTrace",
    "TxnView",
    "VersionStore",
    "collision_probability",
    "generate_trace",
]
