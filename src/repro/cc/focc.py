"""Forward OCC (§2.3's other broadcast flavour).

FOCC validates at commit time *forwards*: the committing transaction's
write set is intersected with the read sets of all transactions still
executing; overlapping readers are killed so the committer proceeds.

A reader is doomed only when its read happened *before* the
committer's commit (it observed the soon-stale version); reads issued
afterwards see the new value and are safe.  In this trace model that
condition — "some overlapping committer overwrote a version I had
already read" — selects exactly the transactions commit-time TOCC
aborts, so the two produce identical abort *rates*; the real-world
difference is *when* the victim dies (mid-flight under FOCC, at
validation under TOCC), which matters for wasted work, not for the
abort count Fig. 9 plots.  The runtime-level models in
:mod:`repro.runtime` capture the wasted-work difference instead.
"""

from __future__ import annotations

from typing import Sequence

from .engine import CommittedTxn, TraceCC, TxnView


class ForwardOCC(TraceCC):
    name = "FOCC"

    def validate(self, view: TxnView, committed: Sequence[CommittedTxn]) -> bool:
        for prior in self.overlapping(view, committed):
            write_set = prior.view.write_set
            if not write_set:
                continue
            for read in view.reads:
                if read.addr in write_set and read.time < prior.view.commit_time:
                    return False
        return True
