"""The shared execution model for trace-level CC algorithms.

Every algorithm processes transactions in arrival order under the
timed concurrency model of :mod:`repro.cc.trace`:

* transaction *i* starts at time ``i`` and would commit at ``i + T``;
* operation *j* of transaction *i* executes at
  ``i + (j + 1) / (n_ops + 1) * T``;
* a read observes the newest version committed at or before its own
  time (versions exist only for transactions the algorithm committed);
* at the commit point the algorithm validates and either installs the
  transaction's writes (stamped with the commit time) or aborts it.

Aborted transactions vanish without retry — the paper's §6.1 metric is
the abort *rate* over the fixed population, not throughput.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .trace import OpKind, Trace, TxnTrace

#: Writer id for a location's initial version.
INITIAL = -1


@dataclass(frozen=True)
class TimedRead:
    addr: int
    time: float
    #: transaction id whose committed write was observed (INITIAL if none).
    version: int
    #: commit time of that version (-inf stand-in 0.0 for INITIAL).
    version_time: float


@dataclass(frozen=True)
class TimedWrite:
    addr: int
    time: float


@dataclass(frozen=True)
class TxnView:
    """Everything a validator may inspect about one transaction."""

    txn: int
    start: float
    commit_time: float
    reads: Tuple[TimedRead, ...]
    writes: Tuple[TimedWrite, ...]

    @property
    def read_set(self) -> frozenset:
        return frozenset(r.addr for r in self.reads)

    @property
    def write_set(self) -> frozenset:
        return frozenset(w.addr for w in self.writes)

    @property
    def is_read_only(self) -> bool:
        return not self.writes


@dataclass
class CommittedTxn:
    """Footprint of a committed transaction, for later validations."""

    view: TxnView
    commit_index: int


@dataclass
class TraceResult:
    """Outcome of running one algorithm over one trace."""

    algorithm: str
    concurrency: int
    decisions: List[bool]
    total: int = 0
    commits: int = 0
    aborts: int = 0

    def __post_init__(self):
        self.total = len(self.decisions)
        self.commits = sum(self.decisions)
        self.aborts = self.total - self.commits

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.total if self.total else 0.0


class VersionStore:
    """Per-location committed version lists, ordered by commit time."""

    def __init__(self) -> None:
        self._versions: Dict[int, List[Tuple[float, int]]] = {}

    def observe(self, addr: int, time: float) -> Tuple[int, float]:
        """(writer, commit_time) of the newest version at *time*."""
        versions = self._versions.get(addr)
        if not versions:
            return INITIAL, 0.0
        idx = bisect.bisect_right(versions, (time, float("inf"))) - 1
        if idx < 0:
            return INITIAL, 0.0
        commit_time, writer = versions[idx]
        return writer, commit_time

    def install(self, addr: int, commit_time: float, writer: int) -> None:
        self._versions.setdefault(addr, []).append((commit_time, writer))

    def current(self, addr: int) -> Tuple[int, float]:
        versions = self._versions.get(addr)
        if not versions:
            return INITIAL, 0.0
        commit_time, writer = versions[-1]
        return writer, commit_time


class TraceCC:
    """Template for trace-level CC algorithms.

    Subclasses implement :meth:`validate`; optional hooks observe
    commits (for forward validation and bookkeeping).
    """

    name = "abstract"

    def __init__(self, concurrency: int, read_placement: str = "start"):
        """``read_placement`` selects when reads observe memory:

        * ``"start"`` — all reads observe the snapshot at transaction
          start, the paper's §6.1 model ("tentative updates of the last
          T transactions ... are not visible");
        * ``"spread"`` — reads are interleaved through the execution
          interval like writes, so a read may observe a concurrent
          commit.  Required to distinguish start-time from commit-time
          timestamp acquisition (Fig. 2(a)).
        """
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        if read_placement not in ("start", "spread"):
            raise ValueError(f"unknown read placement {read_placement!r}")
        self.concurrency = concurrency
        self.read_placement = read_placement

    # -- subclass interface --------------------------------------------
    def validate(self, view: TxnView, committed: Sequence[CommittedTxn]) -> bool:
        raise NotImplementedError

    def on_commit(self, view: TxnView) -> None:
        """Called after a transaction commits (default: nothing)."""

    def doomed(self, view: TxnView) -> bool:
        """Pre-validation kill switch (used by forward validation)."""
        return False

    # -- driver ---------------------------------------------------------
    def run(
        self,
        trace: Trace,
        observer: Optional[Callable[[TxnView, bool], None]] = None,
        bus=None,
    ) -> TraceResult:
        """Replay *trace*; ``observer(view, committed)`` — if given —
        sees every materialized transaction and its fate.  ``bus`` —
        anything satisfying the :class:`repro.runtime.driver.Emitter`
        protocol (an :class:`repro.runtime.events.EventBus`, a full
        Driver) — additionally publishes each transaction as
        begin/read/write/commit-or-abort events carrying explicit
        ``attempt`` (the trace txn id) and read ``version``, which is
        how the sanitizer (:mod:`repro.sanitizer.tracecheck`) rebuilds
        the multi-version history an algorithm actually committed on
        the same instrumentation path the simulator uses."""
        store = VersionStore()
        committed: List[CommittedTxn] = []
        decisions: List[bool] = []
        for txn_trace in trace:
            view = self._materialize(txn_trace, store)
            ok = not self.doomed(view) and self.validate(view, committed)
            decisions.append(ok)
            if ok:
                for write in view.writes:
                    store.install(write.addr, view.commit_time, view.txn)
                committed.append(CommittedTxn(view, len(committed)))
                self.on_commit(view)
            if observer is not None:
                observer(view, ok)
            if bus is not None:
                self._publish(bus, view, ok)
        return TraceResult(self.name, self.concurrency, decisions)

    @staticmethod
    def _publish(bus, view: TxnView, ok: bool) -> None:
        """One transaction's fate as events (tid -1: no sim thread).

        Emissions are ``wants()``-gated like the simulator's: replays
        with no subscriber for a kind skip event construction."""
        from ..runtime.events import SimEvent

        if bus.wants("begin"):
            bus.emit(SimEvent("begin", -1, view.start, attempt=view.txn))
        if bus.wants("read"):
            for read in view.reads:
                bus.emit(
                    SimEvent(
                        "read",
                        -1,
                        read.time,
                        addr=read.addr,
                        version=read.version,
                    )
                )
        if bus.wants("write"):
            for write in view.writes:
                bus.emit(SimEvent("write", -1, write.time, addr=write.addr))
        if ok:
            if bus.wants("commit"):
                bus.emit(SimEvent("commit", -1, view.commit_time))
        elif bus.wants("abort"):
            bus.emit(SimEvent("abort", -1, view.commit_time, cause="validation"))

    def _materialize(self, txn_trace: TxnTrace, store: VersionStore) -> TxnView:
        start = float(txn_trace.txn)
        duration = float(self.concurrency)
        n_ops = len(txn_trace.ops)
        reads: List[TimedRead] = []
        writes: List[TimedWrite] = []
        for j, op in enumerate(txn_trace.ops):
            at = start + (j + 1) / (n_ops + 1) * duration
            if op.kind is OpKind.READ:
                if self.read_placement == "start":
                    at = start
                writer, version_time = store.observe(op.addr, at)
                reads.append(TimedRead(op.addr, at, writer, version_time))
            else:
                writes.append(TimedWrite(op.addr, at))
        return TxnView(
            txn=txn_trace.txn,
            start=start,
            commit_time=start + duration,
            reads=tuple(reads),
            writes=tuple(writes),
        )

    # -- helpers shared by subclasses ------------------------------------
    @staticmethod
    def overlapping(view: TxnView, committed: Sequence[CommittedTxn]):
        """Committed transactions whose interval overlaps *view*'s.

        Commit times are monotone in commit order, so the overlap set
        is a suffix of *committed*; we walk backwards and stop at the
        first non-overlapping transaction.
        """
        suffix = []
        for prior in reversed(committed):
            if prior.view.commit_time <= view.start:
                break
            suffix.append(prior)
        return reversed(suffix)
