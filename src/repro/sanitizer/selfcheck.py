"""Sanitizer self-check: known-bad fixtures every oracle must catch.

A validator that never fires is indistinguishable from a validator
that works.  ``repro sanitize --self-check`` runs deliberately broken
TM implementations (and known-anomalous executions) through the full
instrumentation pipeline and asserts each oracle actually flags them:

* ``write-skew``      — the classic SI anomaly on the live SI-MVCC
  backend must produce a serializability violation;
* ``lost-update``     — an STM with validation disabled must commit
  lost updates (and a dependency cycle) on a contended counter;
* ``writeback-race``  — a backend with a torn write-back (drops one
  buffered write) must trip the final-memory oracle;
* ``opacity``         — a zombie read (inconsistent snapshot in an
  aborted attempt) must produce opacity + doomed-read violations;
* ``lint-rules``      — every AST lint rule must fire on its negative
  snippet, and the repo's own ``src/repro`` must lint clean;
* ``clean-run``       — a correct backend must produce zero violations
  (guards against the sanitizer crying wolf).

Each fixture backend here is intentionally wrong; none is exported
through the package API.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..runtime import (
    Memory,
    Read,
    Simulator,
    SnapshotIsolationBackend,
    TinySTMBackend,
    TMBackend,
    Transaction,
    TransactionAborted,
    Work,
    Write,
)
from .dynamic import SanitizerBackend
from .lint import lint_paths, lint_source


class SelfCheckFailure(AssertionError):
    """One of the sanitizer's own fixtures went undetected."""


# ----------------------------------------------------------------------
# Broken backends (fixtures — deliberately wrong)
# ----------------------------------------------------------------------
class _NoValidationSTM(TMBackend):
    """Buffered writes, snapshot-free reads, commit never validates.

    The textbook recipe for lost updates: two increments read the same
    initial value and both commit.
    """

    name = "broken-no-validation"
    #: per-tid buffers are thread-private slots; the bug under test is
    #: the missing validation, not the bookkeeping.
    _sanitizer_locked = ("_buffers",)

    def __init__(self) -> None:
        super().__init__()
        self._buffers: Dict[int, Dict[int, Any]] = {}

    def begin(self, tid: int, now: float) -> float:
        self._buffers[tid] = {}
        return now + 5.0

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        buffer = self._buffers[tid]
        if addr in buffer:
            return buffer[addr], now + 2.0
        return self.memory.load(addr), now + 2.0

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        self._buffers[tid][addr] = value
        return now + 2.0

    def commit(self, tid: int, now: float) -> float:
        for addr, value in self._buffers.pop(tid).items():
            self.memory.store(addr, value)
        return now + 5.0

    def rollback(self, tid: int, now: float, cause: str) -> float:
        self._buffers.pop(tid, None)
        return now + 5.0


class _TornWritebackSTM(_NoValidationSTM):
    """Like :class:`_NoValidationSTM`, but commit drops the write to
    the highest buffered address — a torn write-back."""

    name = "broken-torn-writeback"

    def commit(self, tid: int, now: float) -> float:
        buffer = self._buffers.pop(tid)
        torn = max(buffer) if len(buffer) > 1 else None
        for addr, value in buffer.items():
            if addr != torn:
                self.memory.store(addr, value)
        return now + 5.0


class _PlainBackend(TMBackend):
    """In-place reads/writes, no concurrency control at all; used to
    hand-construct interleavings against the raw hook API."""

    name = "broken-plain"

    def begin(self, tid: int, now: float) -> float:
        return now

    def read(self, tid: int, addr: int, now: float) -> Tuple[Any, float]:
        return self.memory.load(addr), now

    def write(self, tid: int, addr: int, value: Any, now: float) -> float:
        self.memory.store(addr, value)
        return now

    def commit(self, tid: int, now: float) -> float:
        return now

    def rollback(self, tid: int, now: float, cause: str) -> float:
        return now


class _FakeSimulator:
    """The minimal attach surface for driving the bus by hand."""

    def __init__(self, memory: Memory, n_threads: int = 2):
        from ..runtime import CostModel, RunStats
        from ..runtime.events import EventBus

        self.memory = memory
        self.stats = RunStats(backend="selfcheck", workload="", n_threads=n_threads)
        self.cost_model = CostModel()
        self.n_threads = n_threads
        self.bus = EventBus()


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
def _check_write_skew() -> None:
    memory = Memory()
    base = memory.alloc(2)
    memory.store(base, 1)
    memory.store(base + 1, 1)

    def make_body(offset):
        def body():
            x = yield Read(base)
            y = yield Read(base + 1)
            yield Work(800)
            if x + y >= 2:
                yield Write(base + offset, 0)

        return body

    def make_program(offset):
        def program(tid):
            yield Transaction(make_body(offset))

        return program

    backend = SanitizerBackend(SnapshotIsolationBackend())
    Simulator(backend, 2, memory=memory, seed=0).run(
        [make_program(0), make_program(1)]
    )
    report = backend.report(workload="write-skew")
    if not report.by_kind("serializability"):
        raise SelfCheckFailure(
            "SI write-skew went undetected:\n" + report.summary()
        )


def _counter_programs(base: int, increments: int):
    def body():
        value = yield Read(base)
        yield Work(300)
        yield Write(base, value + 1)

    def program(tid):
        for _ in range(increments):
            yield Transaction(body)
            yield Work(50)

    return program


def _check_lost_update() -> None:
    memory = Memory()
    base = memory.alloc(1)
    memory.store(base, 0)
    backend = SanitizerBackend(_NoValidationSTM())
    Simulator(backend, 4, memory=memory, seed=0).run(
        [_counter_programs(base, 6)] * 4
    )
    report = backend.report(workload="contended-counter")
    if not report.by_kind("lost-update") or not report.by_kind("serializability"):
        raise SelfCheckFailure(
            "no-validation STM's lost updates went undetected:\n" + report.summary()
        )


def _check_writeback_race() -> None:
    memory = Memory()
    base = memory.alloc(2)

    def body():
        a = yield Read(base)
        b = yield Read(base + 1)
        yield Write(base, a + 1)
        yield Write(base + 1, b + 1)

    def program(tid):
        for _ in range(3):
            yield Transaction(body)

    backend = SanitizerBackend(_TornWritebackSTM())
    Simulator(backend, 2, memory=memory, seed=0).run([program] * 2)
    report = backend.report(workload="torn-writeback")
    if not report.by_kind("writeback-race"):
        raise SelfCheckFailure(
            "torn write-back went undetected:\n" + report.summary()
        )


def _check_opacity() -> None:
    """Hand-emit a zombie interleaving on the event bus: T1 reads x,
    T2 commits x and y, T1 reads y — an inconsistent snapshot — then
    aborts.  (This also exercises the bus end-to-end: the sanitizer
    must reconstruct the anomaly purely from the event stream.)"""
    from ..runtime.events import SimEvent

    memory = Memory()
    x = memory.alloc(1)
    y = memory.alloc(1)
    memory.store(x, 10)
    memory.store(y, 10)

    backend = SanitizerBackend(_PlainBackend())
    simulator = _FakeSimulator(memory)
    backend.attach(simulator)
    bus = simulator.bus

    bus.emit(SimEvent("begin", 0, 0.0))                    # T1 (attempt 1)
    bus.emit(SimEvent("read", 0, 1.0, addr=x, value=10))   # T1 reads x@initial
    bus.emit(SimEvent("begin", 1, 2.0))                    # T2 (attempt 2)
    bus.emit(SimEvent("write", 1, 3.0, addr=x, value=77))
    bus.emit(SimEvent("write", 1, 4.0, addr=y, value=88))
    bus.emit(SimEvent("commit", 1, 5.0))                   # T2 commits x and y
    bus.emit(SimEvent("read", 0, 6.0, addr=y, value=88))   # zombie read
    # T1 aborts (the backend "noticed" too late).
    bus.emit(SimEvent("abort", 0, 6.0, cause="conflict"))

    report = backend.report(workload="zombie")
    if not report.by_kind("opacity") or not report.by_kind("doomed-read"):
        raise SelfCheckFailure(
            "zombie snapshot went undetected:\n" + report.summary()
        )


_LINT_NEGATIVES = {
    "TM001": (
        "src/repro/cc/bad_entropy.py",
        "import random\n\ndef draw():\n    return random.random()\n",
    ),
    "TM002": (
        "src/repro/runtime/bad_default.py",
        "def enqueue(item, queue=[]):\n    queue.append(item)\n    return queue\n",
    ),
    "TM003": (
        "src/repro/runtime/bad_backend.py",
        "class RacyBackend:\n"
        "    def __init__(self):\n"
        "        self.global_clock = 0\n"
        "    def read(self, tid, addr, now):\n"
        "        self.global_clock += 1\n"
        "        return 0, now\n",
    ),
    "TM004": (
        "src/repro/cc/bad_record.py",
        "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class LeakyView:\n"
        "    txn: int\n",
    ),
}


def _check_lint_rules(src_root: str = "src/repro") -> None:
    for code, (path, source) in _LINT_NEGATIVES.items():
        errors = lint_source(source, path)
        if not any(e.code == code for e in errors):
            raise SelfCheckFailure(
                f"lint rule {code} did not fire on its negative fixture "
                f"({path}); got {errors!r}"
            )
    from pathlib import Path

    if Path(src_root).is_dir():
        errors = lint_paths([src_root])
        if errors:
            listing = "\n".join(str(e) for e in errors)
            raise SelfCheckFailure(f"repo sources must lint clean:\n{listing}")


def _check_clean_run() -> None:
    memory = Memory()
    base = memory.alloc(1)
    memory.store(base, 0)
    backend = SanitizerBackend(TinySTMBackend())
    Simulator(backend, 4, memory=memory, seed=0).run(
        [_counter_programs(base, 6)] * 4
    )
    report = backend.report(workload="contended-counter")
    if not report.ok:
        raise SelfCheckFailure(
            "correct backend produced violations (sanitizer false "
            "positive):\n" + report.summary()
        )
    if memory.load(base) != 4 * 6:
        raise SelfCheckFailure("clean-run fixture lost increments")


CHECKS: List[Tuple[str, Callable[[], None]]] = [
    ("write-skew", _check_write_skew),
    ("lost-update", _check_lost_update),
    ("writeback-race", _check_writeback_race),
    ("opacity", _check_opacity),
    ("lint-rules", _check_lint_rules),
    ("clean-run", _check_clean_run),
]


def run_self_check(emit=print) -> bool:
    """Run every fixture; True iff all oracles caught their bugs."""
    ok = True
    for name, check in CHECKS:
        try:
            check()
        except SelfCheckFailure as failure:
            ok = False
            emit(f"FAIL {name}: {failure}")
        except TransactionAborted as unexpected:  # pragma: no cover
            ok = False
            emit(f"FAIL {name}: fixture leaked an abort: {unexpected}")
        else:
            emit(f"ok   {name}")
    return ok
