"""The TM sanitizer suite: dynamic execution checking + static lint.

The paper's argument (§3 axioms, §4 reachability validation) rests on
every backend committing *only* serializable histories.  This package
is the independent machinery that checks what the runtimes and CC
engines actually commit:

* :mod:`repro.sanitizer.events` — the per-access event-log format
  (begin/read/write/commit/abort with observed versions and simulated
  times) that every check consumes.
* :mod:`repro.sanitizer.dynamic` — :class:`SanitizerBackend`, an
  instrumentation wrapper for any :class:`repro.runtime.TMBackend`;
  replays the recorded log through the :mod:`repro.semantics` oracles
  and flags serializability violations, opacity violations (zombie
  snapshots), lost updates, doomed-transaction reads and write-back
  races.  Also the differential mode (same workload, two backends).
* :mod:`repro.sanitizer.tracecheck` — the same oracle replay for the
  trace-level CC algorithms of :mod:`repro.cc`.
* :mod:`repro.sanitizer.lint` — the repo-specific AST lint pass
  (determinism, mutable defaults, backend lock discipline, frozen
  trace/view dataclasses).
* :mod:`repro.sanitizer.selfcheck` — known-bad fixtures that every
  check must catch; ``repro sanitize --self-check`` runs them.
* :mod:`repro.sanitizer.pytest_plugin` — the ``tm_sanitizer`` fixture.

CLI: ``repro sanitize`` and ``repro lint`` (see :mod:`repro.cli`).
Docs: ``docs/SANITIZER.md``.
"""

from .dynamic import SanitizerBackend, diff_backends, run_sanitized, sanitize_stamp
from .events import EventLog, TxEvent
from .lint import LintError, lint_paths, lint_source
from .report import SanitizeReport, Violation
from .tracecheck import check_trace_algorithm, record_trace_history

__all__ = [
    "EventLog",
    "LintError",
    "SanitizeReport",
    "SanitizerBackend",
    "TxEvent",
    "Violation",
    "check_trace_algorithm",
    "diff_backends",
    "lint_paths",
    "lint_source",
    "record_trace_history",
    "run_sanitized",
    "sanitize_stamp",
]
