"""Violations and the sanitize report.

Every dynamic check yields :class:`Violation` records.  ``kind`` is a
closed vocabulary so drivers (CLI, CI, pytest fixture) can filter and
count without parsing messages:

* ``serializability`` — the committed set's ``->_rw`` has a cycle
  (the §3.2 iff-condition fails).
* ``opacity``         — an aborted attempt observed an inconsistent
  snapshot (zombie execution, §5.3 footnote 7).
* ``doomed-read``     — localization of an opacity violation: the
  first read after which the attempt's snapshot could no longer be
  grafted into the committed history.
* ``lost-update``     — a committed read-modify-write observed a
  version older than its immediate predecessor in version order.
* ``writeback-race``  — final memory disagrees with the last
  committed writer's value (torn or leaked write-back).
* ``state-divergence`` — differential mode only: the two backends
  disagree on final committed state (informational unless the diff
  run is strict; racy-but-serializable programs may diverge benignly).
* ``verify-failed``   — the workload's own invariant oracle raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

VIOLATION_KINDS = (
    "serializability",
    "opacity",
    "doomed-read",
    "lost-update",
    "writeback-race",
    "state-divergence",
    "verify-failed",
)


@dataclass(frozen=True)
class Violation:
    kind: str
    message: str
    #: transaction attempt ids implicated (empty when not applicable).
    attempts: Tuple[int, ...] = ()
    addr: Optional[int] = None

    def __post_init__(self):
        if self.kind not in VIOLATION_KINDS:
            raise ValueError(f"unknown violation kind {self.kind!r}")

    def __str__(self) -> str:
        where = f" @addr={self.addr}" if self.addr is not None else ""
        who = f" [attempts {', '.join(map(str, self.attempts))}]" if self.attempts else ""
        return f"{self.kind}{where}{who}: {self.message}"


@dataclass
class SanitizeReport:
    """Outcome of one sanitized run (or one differential comparison)."""

    backend: str
    workload: str = ""
    violations: List[Violation] = field(default_factory=list)
    #: non-fatal observations (e.g. benign state divergence in diff mode).
    notes: List[str] = field(default_factory=list)
    attempts: int = 0
    committed: int = 0
    aborted: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def by_kind(self, kind: str) -> List[Violation]:
        return [v for v in self.violations if v.kind == kind]

    def summary(self) -> str:
        head = (
            f"sanitize {self.workload or '<run>'} under {self.backend}: "
            f"{self.attempts} attempts ({self.committed} committed, "
            f"{self.aborted} aborted), {len(self.violations)} violation(s)"
        )
        lines = [head]
        lines.extend(f"  VIOLATION {v}" for v in self.violations)
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)
