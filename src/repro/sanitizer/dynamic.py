"""The dynamic TM sanitizer: instrument, record, replay, judge.

:class:`SanitizerBackend` wraps any runtime backend (rococotm,
tinystm, tinystm_etl, tsx, si_mvcc, coarse_lock, ...), recording a
timed per-access event log alongside the multi-version
:class:`repro.semantics.History` the recording layer already builds.
After the run, :meth:`SanitizerBackend.report` replays the history
through the semantics oracles:

1. **serializability** of the committed set — acyclic ``->_rw`` plus a
   serial-replay-verified witness (:func:`assert_serializable`);
2. **opacity** — every aborted attempt grafts into the committed
   history as a read-only observer without creating a cycle;
3. **doomed reads** — for each opacity violation, the minimal read
   prefix that already cycles names the first "zombie" read;
4. **lost updates** — a committed read-modify-write must have observed
   the version immediately preceding its own in version order;
5. **write-back races** — final memory must hold exactly the last
   committed writer's value for every transactionally-written cell.

The differential mode (:func:`diff_backends`) runs one STAMP workload
under two backends with identical seeds and diffs final committed
memory; divergence is reported as a note (racy-but-serializable
programs may diverge benignly) unless ``strict`` is set.
"""

from __future__ import annotations

from typing import Dict

from ..runtime import Memory, Simulator, TMBackend
from ..runtime.recording import RecordingBackend
from ..semantics.serializability import explain_cycle, replay_serially, serialization_witness
from .events import EventLog, TxEvent
from .report import SanitizeReport, Violation


class SanitizerBackend(RecordingBackend):
    """Any backend, instrumented: event log + post-run oracle replay."""

    #: the event log is recorder bookkeeping, appended at the single
    #: simulated instant each operation executes (TM003; see
    #: RecordingBackend._sanitizer_locked for the argument).
    _sanitizer_locked = (
        "_writes",
        "_written_values",
        "_current",
        "aborted_attempts",
        "history",
        "log",
        "_in_backend",
        "_nt_pending",
        "nt_attempts",
    )

    def __init__(self, inner: TMBackend):
        super().__init__(inner)
        self.name = f"sanitized({inner.name})"
        self.log = EventLog()
        self._tid_of: Dict[int, int] = {}
        self._memory_mismatches = []
        #: True while a backend hook runs: stores observed then are the
        #: backend's own write-backs, not workload phase code.
        self._in_backend = False
        #: pending direct (non-transactional) stores, addr -> value.
        self._nt_pending: Dict[int, object] = {}
        #: pseudo-attempt ids minted for direct-store batches.
        self.nt_attempts = []

    def attach(self, simulator) -> None:
        super().attach(simulator)
        self.memory.subscribe(self._on_direct_store)

    # ------------------------------------------------------------------
    # Non-transactional stores (workload phase code under a barrier).
    #
    # STAMP ports legally mutate memory directly between barriers —
    # e.g. kmeans' thread-0 reduce resets the accumulators.  Left
    # unmodeled, later transactional reads of the stored cells would be
    # attributed to stale versions and every oracle would report
    # phantom cycles (a false positive on even the global-lock
    # backend).  Each batch of consecutive direct stores is recorded as
    # one committed pseudo-transaction: the writes install new versions
    # at a single serial point, which is exactly the semantics of a
    # quiesced phase boundary.
    # ------------------------------------------------------------------
    def _on_direct_store(self, addr: int, value) -> None:
        if not self._in_backend:
            self._nt_pending[addr] = value

    def _flush_direct_stores(self, now: float = 0.0) -> None:
        if not self._nt_pending:
            return
        batch, self._nt_pending = self._nt_pending, {}
        self._attempt_id += 1
        attempt = self._attempt_id
        self.nt_attempts.append(attempt)
        self.history.begin(attempt)
        self.log.append(TxEvent("begin", attempt, -1, now))
        for addr, value in sorted(batch.items()):
            self.history.write(attempt, addr)
            self._written_values.setdefault(addr, {})[attempt] = value
            self.log.append(TxEvent("write", attempt, -1, now, addr=addr, value=value))
        self.history.commit(attempt)
        self.log.append(TxEvent("commit", attempt, -1, now))
        self._committed_set.add(attempt)
        for addr in batch:
            self._last_writer[addr] = attempt

    # ------------------------------------------------------------------
    # Instrumented hooks: delegate via RecordingBackend, log the event.
    # ------------------------------------------------------------------
    def begin(self, tid: int, now: float) -> float:
        self._flush_direct_stores(now)
        self._in_backend = True
        try:
            at = super().begin(tid, now)
        finally:
            self._in_backend = False
        attempt = self._current[tid]
        self._tid_of[attempt] = tid
        self.log.append(TxEvent("begin", attempt, tid, at))
        return at

    def read(self, tid: int, addr: int, now: float):
        self._flush_direct_stores(now)
        attempt = self._current[tid]
        mark = len(self.history.events)
        self._in_backend = True
        try:
            value, at = super().read(tid, addr, now)
        except Exception:
            self._log_unwound(attempt, tid, now)
            raise
        finally:
            self._in_backend = False
        if len(self.history.events) > mark:
            version = self.history.events[-1].version
        else:
            # Read-own-write: served from the attempt's write buffer.
            version = attempt
        self.log.append(TxEvent("read", attempt, tid, at, addr=addr, value=value, version=version))
        return value, at

    def write(self, tid: int, addr: int, value, now: float) -> float:
        self._flush_direct_stores(now)
        attempt = self._current[tid]
        self._in_backend = True
        try:
            at = super().write(tid, addr, value, now)
        except Exception:
            self._log_unwound(attempt, tid, now)
            raise
        finally:
            self._in_backend = False
        self.log.append(TxEvent("write", attempt, tid, at, addr=addr, value=value))
        return at

    def commit(self, tid: int, now: float) -> float:
        self._flush_direct_stores(now)
        attempt = self._current[tid]
        self._in_backend = True
        try:
            at = super().commit(tid, now)
        except Exception:
            self._log_unwound(attempt, tid, now)
            raise
        finally:
            self._in_backend = False
        self.log.append(TxEvent("commit", attempt, tid, at))
        return at

    def rollback(self, tid: int, now: float, cause: str) -> float:
        self._in_backend = True
        try:
            return super().rollback(tid, now, cause)
        finally:
            self._in_backend = False

    def _log_unwound(self, attempt: int, tid: int, now: float) -> None:
        """Record the abort if the recording layer just closed the attempt."""
        if attempt not in self._current.values() and self.history.record(attempt).committed is False:
            self.log.append(TxEvent("abort", attempt, tid, now, cause="unwound"))

    def run_finished(self) -> None:
        self._in_backend = True
        try:
            super().run_finished()
        finally:
            self._in_backend = False
        self._flush_direct_stores()
        self._check_final_memory()

    # ------------------------------------------------------------------
    # Post-run analysis
    # ------------------------------------------------------------------
    def _check_final_memory(self) -> None:
        """Write-back race check: every transactionally written cell
        must hold the last committed writer's value."""
        memory = self.memory
        if memory is None:
            return
        for addr, writer in sorted(self._last_writer.items()):
            expected = self._written_values[addr][writer]
            actual = memory.load(addr)
            if actual != expected:
                self._memory_mismatches.append((addr, writer, expected, actual))

    def report(self, workload: str = "") -> SanitizeReport:
        """Replay the recorded history through every oracle."""
        self._finish_stragglers()
        history = self.history
        rep = SanitizeReport(
            backend=self.name,
            workload=workload,
            attempts=len(self.committed_attempts) + len(self.aborted_attempts),
            committed=len(self.committed_attempts),
            aborted=len(self.aborted_attempts),
        )

        # 1. serializability of the committed set, witness replayed.
        rw = history.rw_dependencies()
        cycle = explain_cycle(rw)
        if cycle is not None:
            rep.add(
                Violation(
                    "serializability",
                    f"committed set has dependency cycle {cycle}",
                    attempts=tuple(cycle),
                )
            )
        else:
            witness = serialization_witness(rw)
            if witness is not None and not replay_serially(history, witness):
                rep.add(
                    Violation(
                        "serializability",
                        "topological witness failed serial replay "
                        "(dependency extraction inconsistent)",
                    )
                )

        # 2+3. opacity of aborted attempts, localized to the doomed read.
        committed = set(history.committed)
        for attempt in self.aborted_attempts:
            if not history.record(attempt).reads:
                continue
            bad = explain_cycle(history.rw_dependencies(committed | {attempt}))
            if bad and attempt in bad:
                rep.add(
                    Violation(
                        "opacity",
                        f"aborted attempt {attempt} observed an inconsistent "
                        f"snapshot (cycle {bad})",
                        attempts=(attempt,),
                    )
                )
                doomed = self._first_doomed_read(attempt, committed)
                if doomed is not None:
                    obj, version = doomed
                    rep.add(
                        Violation(
                            "doomed-read",
                            f"attempt {attempt} was doomed by reading "
                            f"version {version} of object {obj} "
                            f"(zombie continued past an invalid snapshot)",
                            attempts=(attempt,),
                            addr=obj,
                        )
                    )

        # 4. lost updates among committed read-modify-writes.
        for txn in history.committed:
            rec = history.record(txn)
            for obj in sorted(rec.writes & rec.read_set):
                order = history.version_order(obj)
                observed = rec.reads[obj]
                if observed not in order:
                    continue  # observed an uncommitted value; see 5.
                mine = order.index(txn)
                if order.index(observed) < mine - 1:
                    lost = order[mine - 1]
                    rep.add(
                        Violation(
                            "lost-update",
                            f"txn {txn} overwrote object {obj} having read "
                            f"version {observed}, silently discarding "
                            f"committed version {lost}",
                            attempts=(txn, lost),
                            addr=obj,
                        )
                    )

        # 5. write-back races against final memory.
        for addr, writer, expected, actual in self._memory_mismatches:
            rep.add(
                Violation(
                    "writeback-race",
                    f"final memory[{addr}] = {actual!r} but last committed "
                    f"writer {writer} stored {expected!r}",
                    attempts=(writer,),
                    addr=addr,
                )
            )
        return rep

    def _first_doomed_read(self, attempt: int, committed: set):
        """The earliest read whose addition makes the graft cyclic."""
        rec = self.history.record(attempt)
        full = dict(rec.reads)
        items = list(full.items())
        try:
            for k in range(1, len(items) + 1):
                rec.reads = dict(items[:k])
                cycle = explain_cycle(
                    self.history.rw_dependencies(committed | {attempt})
                )
                if cycle and attempt in cycle:
                    return items[k - 1]
        finally:
            rec.reads = full
        return None


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def run_sanitized(
    workload_cls,
    backend: TMBackend,
    n_threads: int,
    scale: float = 1.0,
    seed: int = 0,
    verify: bool = True,
):
    """Run one STAMP workload instrumented; returns
    ``(report, sanitized_backend, memory)`` for callers that also want
    the event log or the final heap (the CLI's ``--dump-log``,
    :func:`diff_backends`)."""
    memory = Memory()
    workload = workload_cls(memory, n_threads, scale=scale, seed=seed)
    sanitized = SanitizerBackend(backend)
    simulator = Simulator(
        sanitized,
        n_threads,
        memory=memory,
        seed=seed,
        workload_name=workload.name,
    )
    simulator.run([workload.program] * n_threads)
    report = sanitized.report(workload=workload.name)
    if verify:
        try:
            workload.verify()
        except AssertionError as failure:
            report.add(
                Violation("verify-failed", f"workload invariant violated: {failure}")
            )
    report.notes.append(f"makespan {simulator.stats.makespan_ns:.0f} ns")
    return report, sanitized, memory


def sanitize_stamp(
    workload_cls,
    backend: TMBackend,
    n_threads: int,
    scale: float = 1.0,
    seed: int = 0,
    verify: bool = True,
) -> SanitizeReport:
    """Run one STAMP workload under a sanitized backend; full report."""
    report, _, _ = run_sanitized(
        workload_cls, backend, n_threads, scale=scale, seed=seed, verify=verify
    )
    return report


def diff_backends(
    workload_cls,
    backend_a: TMBackend,
    backend_b: TMBackend,
    n_threads: int,
    scale: float = 1.0,
    seed: int = 0,
    strict: bool = False,
) -> SanitizeReport:
    """Differential mode: same workload + seed under two backends.

    Each side runs fully sanitized; the combined report carries both
    sides' violations plus the committed-state diff.  Divergent cells
    are notes by default — thread interleavings legally differ across
    backends, so racy-but-serializable programs may produce different
    (individually correct) final states — and ``state-divergence``
    violations under ``strict``.
    """

    report_a, _, memory_a = run_sanitized(
        workload_cls, backend_a, n_threads, scale=scale, seed=seed
    )
    report_b, _, memory_b = run_sanitized(
        workload_cls, backend_b, n_threads, scale=scale, seed=seed
    )

    combined = SanitizeReport(
        backend=f"{backend_a.name} vs {backend_b.name}",
        workload=report_a.workload,
        attempts=report_a.attempts + report_b.attempts,
        committed=report_a.committed + report_b.committed,
        aborted=report_a.aborted + report_b.aborted,
    )
    for side in (report_a, report_b):
        combined.violations.extend(side.violations)

    span = max(memory_a.allocated, memory_b.allocated)
    diverged = [
        addr
        for addr in range(span)
        if (memory_a.load(addr) if addr < memory_a.allocated else None)
        != (memory_b.load(addr) if addr < memory_b.allocated else None)
    ]
    if diverged:
        detail = (
            f"{len(diverged)} of {span} cells differ "
            f"(first few: {diverged[:8]})"
        )
        if strict:
            combined.add(
                Violation("state-divergence", detail, addr=diverged[0])
            )
        else:
            combined.notes.append(
                f"committed state diverged: {detail} — both sides verified, "
                "so the divergence is schedule-dependent, not a violation"
            )
    else:
        combined.notes.append(f"committed state identical across {span} cells")
    return combined
