"""The dynamic TM sanitizer: subscribe, record, replay, judge.

:class:`SanitizerBackend` opts any runtime backend (rococotm,
tinystm, tinystm_etl, tsx, si_mvcc, coarse_lock, ...) into full
instrumentation.  Since the event-bus refactor it observes nothing in
the hook path itself: the simulator publishes every state transition
on its :class:`~repro.runtime.events.EventBus`, and the sanitizer is
a pair of bus subscribers bracketing the shared
:class:`~repro.runtime.recording.HistoryRecorder` — a *pre* handler
that folds pending direct stores into the history before the recorder
sees the next transactional operation, and a *log* handler that
appends the timed :class:`TxEvent` after the recorder has attributed
versions.  Direct (non-transactional) stores still arrive through
:meth:`Memory.subscribe`, discriminated from backend write-backs by
the bus's ``in_backend`` flag rather than a private wrapper flag.

After the run, :meth:`SanitizerBackend.report` replays the recorded
history through the semantics oracles:

1. **serializability** of the committed set — acyclic ``->_rw`` plus a
   serial-replay-verified witness (:func:`assert_serializable`);
2. **opacity** — every aborted attempt grafts into the committed
   history as a read-only observer without creating a cycle;
3. **doomed reads** — for each opacity violation, the minimal read
   prefix that already cycles names the first "zombie" read;
4. **lost updates** — a committed read-modify-write must have observed
   the version immediately preceding its own in version order;
5. **write-back races** — final memory must hold exactly the last
   committed writer's value for every transactionally-written cell.

The differential mode (:func:`diff_backends`) runs one STAMP workload
under two backends with identical seeds and diffs final committed
memory; divergence is reported as a note (racy-but-serializable
programs may diverge benignly) unless ``strict`` is set.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..runtime import Memory, Simulator, TMBackend
from ..runtime.events import SimEvent
from ..runtime.recording import RecordingBackend
from ..semantics.serializability import explain_cycle, replay_serially, serialization_witness
from .events import EventLog, TxEvent
from .report import SanitizeReport, Violation

#: the transitions the sanitizer's subscribers care about.
_KINDS = ("begin", "read", "write", "commit", "abort")


class SanitizerBackend(RecordingBackend):
    """Any backend, instrumented: event log + post-run oracle replay."""

    def __init__(self, inner: TMBackend):
        super().__init__(inner)
        self.name = f"sanitized({inner.name})"
        self.log = EventLog()
        self._tid_of: Dict[int, int] = {}
        self._memory_mismatches = []
        #: pending direct (non-transactional) stores, addr -> value.
        self._nt_pending: Dict[int, object] = {}
        #: pseudo-attempt ids minted for direct-store batches.
        self.nt_attempts = []
        #: attempt ids captured by the pre-handler before the recorder
        #: closes them (commit/abort pop the recorder's current map).
        self._stashed: Dict[int, Optional[int]] = {}
        self._bus = None

    def attach(self, simulator) -> None:
        # Subscription order is the instrumentation contract: the pre
        # handler flushes direct stores *before* the recorder processes
        # the next transactional op (so version attribution sees the
        # phase boundary), and the log handler runs *after* it (so the
        # observed read version is already computed).
        self._bus = simulator.bus
        simulator.bus.subscribe(self._pre_event, kinds=_KINDS)
        super().attach(simulator)  # HistoryRecorder subscribes here.
        simulator.bus.subscribe(self._log_event, kinds=_KINDS)
        self.memory.subscribe(self._on_direct_store)

    # ------------------------------------------------------------------
    # Non-transactional stores (workload phase code under a barrier).
    #
    # STAMP ports legally mutate memory directly between barriers —
    # e.g. kmeans' thread-0 reduce resets the accumulators.  Left
    # unmodeled, later transactional reads of the stored cells would be
    # attributed to stale versions and every oracle would report
    # phantom cycles (a false positive on even the global-lock
    # backend).  Each batch of consecutive direct stores is recorded as
    # one committed pseudo-transaction: the writes install new versions
    # at a single serial point, which is exactly the semantics of a
    # quiesced phase boundary.
    # ------------------------------------------------------------------
    def _on_direct_store(self, addr: int, value) -> None:
        if self._bus is None or not self._bus.in_backend:
            self._nt_pending[addr] = value

    def _flush_direct_stores(self, now: float = 0.0) -> None:
        if not self._nt_pending:
            return
        batch, self._nt_pending = self._nt_pending, {}
        attempt = self.recorder.record_direct_commit(batch)
        self.nt_attempts.append(attempt)
        self.log.append(TxEvent("begin", attempt, -1, now))
        for addr, value in sorted(batch.items()):
            self.log.append(TxEvent("write", attempt, -1, now, addr=addr, value=value))
        self.log.append(TxEvent("commit", attempt, -1, now))

    # ------------------------------------------------------------------
    # Bus subscribers
    # ------------------------------------------------------------------
    def _pre_event(self, event: SimEvent) -> None:
        kind = event.kind
        if kind != "abort":
            self._flush_direct_stores(event.time)
        if kind in ("commit", "abort"):
            self._stashed[event.tid] = self.recorder.attempt_of(event.tid)

    def _log_event(self, event: SimEvent) -> None:
        kind, tid = event.kind, event.tid
        if kind == "begin":
            attempt = self.recorder.attempt_of(tid)
            self._tid_of[attempt] = tid
            self.log.append(TxEvent("begin", attempt, tid, event.time))
            return
        if kind in ("read", "write"):
            attempt = self.recorder.attempt_of(tid)
            if attempt is None:
                return
            if kind == "read":
                self.log.append(
                    TxEvent(
                        "read",
                        attempt,
                        tid,
                        event.time,
                        addr=event.addr,
                        value=event.value,
                        version=self.recorder.last_read_version,
                    )
                )
            else:
                self.log.append(
                    TxEvent(
                        "write", attempt, tid, event.time, addr=event.addr, value=event.value
                    )
                )
            return
        # commit/abort closed the attempt inside the recorder; use the
        # id the pre-handler stashed.
        attempt = self._stashed.pop(tid, None)
        if attempt is None:
            return
        if kind == "commit":
            self.log.append(TxEvent("commit", attempt, tid, event.time))
        else:
            self.log.append(
                TxEvent("abort", attempt, tid, event.time, cause=event.cause)
            )

    def run_finished(self) -> None:
        super().run_finished()
        self._flush_direct_stores()
        self._check_final_memory()

    # ------------------------------------------------------------------
    # Post-run analysis
    # ------------------------------------------------------------------
    def _check_final_memory(self) -> None:
        """Write-back race check: every transactionally written cell
        must hold the last committed writer's value."""
        memory = self.memory
        if memory is None:
            return
        recorder = self.recorder
        for addr, writer in sorted(recorder.last_writer.items()):
            expected = recorder.written_values[addr][writer]
            actual = memory.load(addr)
            if actual != expected:
                self._memory_mismatches.append((addr, writer, expected, actual))

    def report(self, workload: str = "") -> SanitizeReport:
        """Replay the recorded history through every oracle."""
        self.recorder.finish_stragglers()
        history = self.history
        rep = SanitizeReport(
            backend=self.name,
            workload=workload,
            attempts=len(self.committed_attempts) + len(self.aborted_attempts),
            committed=len(self.committed_attempts),
            aborted=len(self.aborted_attempts),
        )

        # 1. serializability of the committed set, witness replayed.
        rw = history.rw_dependencies()
        cycle = explain_cycle(rw)
        if cycle is not None:
            rep.add(
                Violation(
                    "serializability",
                    f"committed set has dependency cycle {cycle}",
                    attempts=tuple(cycle),
                )
            )
        else:
            witness = serialization_witness(rw)
            if witness is not None and not replay_serially(history, witness):
                rep.add(
                    Violation(
                        "serializability",
                        "topological witness failed serial replay "
                        "(dependency extraction inconsistent)",
                    )
                )

        # 2+3. opacity of aborted attempts, localized to the doomed read.
        committed = set(history.committed)
        for attempt in self.aborted_attempts:
            if not history.record(attempt).reads:
                continue
            bad = explain_cycle(history.rw_dependencies(committed | {attempt}))
            if bad and attempt in bad:
                rep.add(
                    Violation(
                        "opacity",
                        f"aborted attempt {attempt} observed an inconsistent "
                        f"snapshot (cycle {bad})",
                        attempts=(attempt,),
                    )
                )
                doomed = self._first_doomed_read(attempt, committed)
                if doomed is not None:
                    obj, version = doomed
                    rep.add(
                        Violation(
                            "doomed-read",
                            f"attempt {attempt} was doomed by reading "
                            f"version {version} of object {obj} "
                            f"(zombie continued past an invalid snapshot)",
                            attempts=(attempt,),
                            addr=obj,
                        )
                    )

        # 4. lost updates among committed read-modify-writes.
        for txn in history.committed:
            rec = history.record(txn)
            for obj in sorted(rec.writes & rec.read_set):
                order = history.version_order(obj)
                observed = rec.reads[obj]
                if observed not in order:
                    continue  # observed an uncommitted value; see 5.
                mine = order.index(txn)
                if order.index(observed) < mine - 1:
                    lost = order[mine - 1]
                    rep.add(
                        Violation(
                            "lost-update",
                            f"txn {txn} overwrote object {obj} having read "
                            f"version {observed}, silently discarding "
                            f"committed version {lost}",
                            attempts=(txn, lost),
                            addr=obj,
                        )
                    )

        # 5. write-back races against final memory.
        for addr, writer, expected, actual in self._memory_mismatches:
            rep.add(
                Violation(
                    "writeback-race",
                    f"final memory[{addr}] = {actual!r} but last committed "
                    f"writer {writer} stored {expected!r}",
                    attempts=(writer,),
                    addr=addr,
                )
            )
        return rep

    def _first_doomed_read(self, attempt: int, committed: set):
        """The earliest read whose addition makes the graft cyclic."""
        rec = self.history.record(attempt)
        full = dict(rec.reads)
        items = list(full.items())
        try:
            for k in range(1, len(items) + 1):
                rec.reads = dict(items[:k])
                cycle = explain_cycle(
                    self.history.rw_dependencies(committed | {attempt})
                )
                if cycle and attempt in cycle:
                    return items[k - 1]
        finally:
            rec.reads = full
        return None


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def run_sanitized(
    workload_cls,
    backend: TMBackend,
    n_threads: int,
    scale: float = 1.0,
    seed: int = 0,
    verify: bool = True,
):
    """Run one STAMP workload instrumented; returns
    ``(report, sanitized_backend, memory)`` for callers that also want
    the event log or the final heap (the CLI's ``--dump-log``,
    :func:`diff_backends`)."""
    memory = Memory()
    workload = workload_cls(memory, n_threads, scale=scale, seed=seed)
    sanitized = SanitizerBackend(backend)
    simulator = Simulator(
        sanitized,
        n_threads,
        memory=memory,
        seed=seed,
        workload_name=workload.name,
    )
    simulator.run([workload.program] * n_threads)
    report = sanitized.report(workload=workload.name)
    if verify:
        try:
            workload.verify()
        except AssertionError as failure:
            report.add(
                Violation("verify-failed", f"workload invariant violated: {failure}")
            )
    report.notes.append(f"makespan {simulator.stats.makespan_ns:.0f} ns")
    return report, sanitized, memory


def sanitize_stamp(
    workload_cls,
    backend: TMBackend,
    n_threads: int,
    scale: float = 1.0,
    seed: int = 0,
    verify: bool = True,
) -> SanitizeReport:
    """Run one STAMP workload under a sanitized backend; full report."""
    report, _, _ = run_sanitized(
        workload_cls, backend, n_threads, scale=scale, seed=seed, verify=verify
    )
    return report


def diff_backends(
    workload_cls,
    backend_a: TMBackend,
    backend_b: TMBackend,
    n_threads: int,
    scale: float = 1.0,
    seed: int = 0,
    strict: bool = False,
) -> SanitizeReport:
    """Differential mode: same workload + seed under two backends.

    Each side runs fully sanitized; the combined report carries both
    sides' violations plus the committed-state diff.  Divergent cells
    are notes by default — thread interleavings legally differ across
    backends, so racy-but-serializable programs may produce different
    (individually correct) final states — and ``state-divergence``
    violations under ``strict``.
    """

    report_a, _, memory_a = run_sanitized(
        workload_cls, backend_a, n_threads, scale=scale, seed=seed
    )
    report_b, _, memory_b = run_sanitized(
        workload_cls, backend_b, n_threads, scale=scale, seed=seed
    )

    combined = SanitizeReport(
        backend=f"{backend_a.name} vs {backend_b.name}",
        workload=report_a.workload,
        attempts=report_a.attempts + report_b.attempts,
        committed=report_a.committed + report_b.committed,
        aborted=report_a.aborted + report_b.aborted,
    )
    for side in (report_a, report_b):
        combined.violations.extend(side.violations)

    span = max(memory_a.allocated, memory_b.allocated)
    diverged = [
        addr
        for addr in range(span)
        if (memory_a.load(addr) if addr < memory_a.allocated else None)
        != (memory_b.load(addr) if addr < memory_b.allocated else None)
    ]
    if diverged:
        detail = (
            f"{len(diverged)} of {span} cells differ "
            f"(first few: {diverged[:8]})"
        )
        if strict:
            combined.add(
                Violation("state-divergence", detail, addr=diverged[0])
            )
        else:
            combined.notes.append(
                f"committed state diverged: {detail} — both sides verified, "
                "so the divergence is schedule-dependent, not a violation"
            )
    else:
        combined.notes.append(f"committed state identical across {span} cells")
    return combined
