"""The ``tm_sanitizer`` pytest fixture.

Registered from ``tests/conftest.py``::

    from repro.sanitizer.pytest_plugin import tm_sanitizer  # noqa: F401

A test wraps whichever backend it drives and runs as usual::

    def test_my_workload(tm_sanitizer):
        backend = tm_sanitizer.wrap(TinySTMBackend())
        Simulator(backend, 4, memory=memory, seed=0).run(programs)

At teardown the fixture replays every wrapped backend's recorded
execution through the full oracle battery (serializability, opacity,
doomed reads, lost updates, write-back races) and fails the test on
any violation — so an existing behavioural test also becomes a
correctness audit of the backend it happened to exercise.
"""

from __future__ import annotations

from typing import List

import pytest

from ..runtime import TMBackend
from .dynamic import SanitizerBackend
from .report import SanitizeReport


class SanitizerHarness:
    """Collects wrapped backends; checked at fixture teardown."""

    def __init__(self) -> None:
        self.backends: List[SanitizerBackend] = []
        self.reports: List[SanitizeReport] = []

    def wrap(self, inner: TMBackend) -> SanitizerBackend:
        """Wrap *inner* for instrumentation; remember it for teardown."""
        backend = SanitizerBackend(inner)
        self.backends.append(backend)
        return backend

    def check(self) -> List[SanitizeReport]:
        """Replay the oracles now; raises on any violation."""
        self.reports = [b.report() for b in self.backends]
        failing = [r for r in self.reports if not r.ok]
        if failing:
            raise AssertionError(
                "TM sanitizer violations:\n"
                + "\n".join(r.summary() for r in failing)
            )
        return self.reports


@pytest.fixture
def tm_sanitizer():
    """Yields a :class:`SanitizerHarness`; verifies at teardown."""
    harness = SanitizerHarness()
    yield harness
    harness.check()
