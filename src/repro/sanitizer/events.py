"""The sanitizer's event-log format.

One :class:`TxEvent` per backend hook invocation, stamped with the
simulated time at which the operation completed.  ``attempt`` is a
globally unique id per transaction *attempt* (retries of the same
atomic block get fresh ids), matching the attempt ids the recording
layer feeds to :class:`repro.semantics.History` — so an event log and
the history it induced use the same vocabulary.

For READ events, ``version`` names the attempt whose committed write
produced the observed value (``-1`` for the initial, pre-run value),
exactly :data:`repro.semantics.INITIAL_VERSION`'s convention.

The log round-trips through plain dicts (:meth:`TxEvent.to_dict` /
:meth:`EventLog.dump_jsonl`) so recorded executions can be archived
and re-checked offline without re-running the simulation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Iterable, Iterator, List, Optional

#: Event kinds, in the vocabulary of :class:`repro.semantics.EventKind`.
KINDS = ("begin", "read", "write", "commit", "abort")


@dataclass(frozen=True)
class TxEvent:
    """One recorded backend operation."""

    kind: str
    attempt: int
    tid: int
    time: float
    addr: Optional[int] = None
    value: Any = None
    #: for reads: attempt id of the writer whose value was observed.
    version: Optional[int] = None
    #: for aborts: the backend's abort cause string.
    cause: Optional[str] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None or k == "value"}

    @classmethod
    def from_dict(cls, data: dict) -> "TxEvent":
        return cls(
            kind=data["kind"],
            attempt=data["attempt"],
            tid=data["tid"],
            time=data["time"],
            addr=data.get("addr"),
            value=data.get("value"),
            version=data.get("version"),
            cause=data.get("cause"),
        )


class EventLog:
    """An append-only sequence of :class:`TxEvent`."""

    def __init__(self, events: Optional[Iterable[TxEvent]] = None):
        self._events: List[TxEvent] = list(events or ())

    def append(self, event: TxEvent) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TxEvent]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def of_attempt(self, attempt: int) -> List[TxEvent]:
        return [e for e in self._events if e.attempt == attempt]

    def reads_of(self, attempt: int) -> List[TxEvent]:
        return [e for e in self._events if e.attempt == attempt and e.kind == "read"]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dump_jsonl(self) -> str:
        """One JSON object per line; values must be JSON-serializable."""
        return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in self._events)

    @classmethod
    def load_jsonl(cls, text: str) -> "EventLog":
        return cls(
            TxEvent.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        )
