"""Repo-specific AST lint rules.

These rules encode the invariants the *dynamic* sanitizer's replay
relies on — chiefly determinism (a recorded execution must be exactly
reproducible from its seed) and immutability of the record types the
oracles consume.  Four rules:

``TM001`` **determinism** — inside ``core/``, ``hw/`` and ``cc/``, the
    only permitted use of the ``random`` module is constructing (or
    annotating with) ``random.Random``; the ``time`` and ``datetime``
    modules are banned outright.  Ambient entropy or wall-clock reads
    in the validators would make sanitizer replay unsound.

``TM002`` **mutable-default** — no mutable default arguments
    (``def f(x=[])``), anywhere.  A shared default list in a backend
    or workload aliases state across transactions/instances.

``TM003`` **lock-discipline** — in backend classes, every mutation of
    shared backend state reachable from the ``read``/``write`` hooks
    must name its target attribute in the class-level
    ``_sanitizer_locked`` tuple.  The declaration is the author's
    assertion that the attribute is governed by the backend's lock /
    commit discipline (or is a per-thread slot); undeclared mutations
    on the hot path are exactly where write-back races hide.

``TM004`` **frozen-dataclass** — trace/view/event record types
    (dataclass names ending in ``View``/``Read``/``Write``/``Event``/
    ``Op``/``Trace`` under ``cc/``, ``semantics/``, ``runtime/`` and
    ``sanitizer/``) must be ``@dataclass(frozen=True)``: the oracles
    assume footprints cannot be edited after recording.

A line containing ``# tm-lint: ignore`` suppresses all findings on
that line.  CLI: ``repro lint [paths...]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

SUPPRESS_MARK = "# tm-lint: ignore"

#: directories whose files the determinism rule governs.
DETERMINISM_SCOPE = {"core", "hw", "cc", "faults"}
#: directories whose record types must be frozen.
FROZEN_SCOPE = {"cc", "semantics", "runtime", "sanitizer"}
#: dataclass-name suffixes that mark a record (trace/view/event) type.
FROZEN_SUFFIXES = ("View", "Read", "Write", "Event", "Op", "Trace")

BANNED_MODULES = ("time", "datetime")
MUTATOR_METHODS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "setdefault",
    "update",
}
MUTABLE_DEFAULT_CALLS = {
    "list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter",
}


@dataclass(frozen=True)
class LintError:
    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _parts(path: str) -> Set[str]:
    return set(Path(path).parts)


def _attr_root(node: ast.AST) -> Optional[str]:
    """The attribute name X for any target rooted at ``self.X``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        inner = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(inner, ast.Name)
            and inner.id == "self"
        ):
            return node.attr
        node = inner
    return None


def _is_backend_class(cls: ast.ClassDef) -> bool:
    if cls.name.endswith("Backend"):
        return True
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name == "TMBackend" or name.endswith("Backend"):
            return True
    return False


def _string_elements(node: ast.AST) -> List[str]:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return [
            e.value
            for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        ]
    return []


# ----------------------------------------------------------------------
# TM001 — determinism
# ----------------------------------------------------------------------
def _check_determinism(tree: ast.Module, path: str) -> Iterable[LintError]:
    if not (_parts(path) & DETERMINISM_SCOPE):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in BANNED_MODULES:
                    yield LintError(
                        path, node.lineno, node.col_offset, "TM001",
                        f"module '{alias.name}' is banned here: validators "
                        "must be deterministic (no wall-clock reads)",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in BANNED_MODULES:
                yield LintError(
                    path, node.lineno, node.col_offset, "TM001",
                    f"import from '{node.module}' is banned here "
                    "(determinism)",
                )
            elif root == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield LintError(
                            path, node.lineno, node.col_offset, "TM001",
                            f"'from random import {alias.name}' uses ambient "
                            "entropy; inject a random.Random(seed) instead",
                        )
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "random"
                and node.attr != "Random"
            ):
                yield LintError(
                    path, node.lineno, node.col_offset, "TM001",
                    f"module-level 'random.{node.attr}' breaks replay "
                    "determinism; use an injected random.Random(seed)",
                )
            elif isinstance(node.value, ast.Name) and node.value.id in BANNED_MODULES:
                yield LintError(
                    path, node.lineno, node.col_offset, "TM001",
                    f"'{node.value.id}.{node.attr}' is banned here "
                    "(determinism)",
                )


# ----------------------------------------------------------------------
# TM002 — mutable defaults
# ----------------------------------------------------------------------
def _check_mutable_defaults(tree: ast.Module, path: str) -> Iterable[LintError]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in MUTABLE_DEFAULT_CALLS
            )
            if bad:
                yield LintError(
                    path, default.lineno, default.col_offset, "TM002",
                    f"mutable default argument in '{node.name}' aliases "
                    "state across calls; default to None and construct "
                    "inside the body",
                )


# ----------------------------------------------------------------------
# TM003 — backend lock discipline
# ----------------------------------------------------------------------
def _check_lock_discipline(tree: ast.Module, path: str) -> Iterable[LintError]:
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        if not _is_backend_class(cls):
            continue
        methods = {
            m.name: m for m in cls.body if isinstance(m, ast.FunctionDef)
        }
        declared: Set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "_sanitizer_locked":
                        declared.update(_string_elements(stmt.value))

        shared: Set[str] = set()
        for init_name in ("__init__", "attach"):
            init = methods.get(init_name)
            if init is None:
                continue
            for node in ast.walk(init):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for target in targets:
                    root = _attr_root(target)
                    if root:
                        shared.add(root)

        # Methods reachable from the transactional hot path.
        reachable: Set[str] = set()
        frontier = [name for name in ("read", "write") if name in methods]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for node in ast.walk(methods[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in methods
                ):
                    frontier.append(node.func.attr)

        for name in sorted(reachable):
            for node in ast.walk(methods[name]):
                target = None
                if isinstance(node, ast.Assign):
                    target = node.targets[0]
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                ):
                    target = node.func.value
                if target is None:
                    continue
                root = _attr_root(target)
                if root and root in shared and root not in declared:
                    yield LintError(
                        path, node.lineno, node.col_offset, "TM003",
                        f"{cls.name}.{name} mutates shared backend state "
                        f"'self.{root}' on the read/write path without "
                        "declaring it in _sanitizer_locked — assert the "
                        "lock/commit discipline or move the mutation",
                    )


# ----------------------------------------------------------------------
# TM004 — frozen record dataclasses
# ----------------------------------------------------------------------
def _dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.AST]:
    for deco in cls.decorator_list:
        name = None
        if isinstance(deco, ast.Name):
            name = deco.id
        elif isinstance(deco, ast.Attribute):
            name = deco.attr
        elif isinstance(deco, ast.Call):
            func = deco.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name == "dataclass":
            return deco
    return None


def _is_frozen(deco: ast.AST) -> bool:
    if not isinstance(deco, ast.Call):
        return False
    for kw in deco.keywords:
        if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _check_frozen_records(tree: ast.Module, path: str) -> Iterable[LintError]:
    if not (_parts(path) & FROZEN_SCOPE):
        return
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        if not cls.name.endswith(FROZEN_SUFFIXES):
            continue
        deco = _dataclass_decorator(cls)
        if deco is not None and not _is_frozen(deco):
            yield LintError(
                path, cls.lineno, cls.col_offset, "TM004",
                f"record dataclass '{cls.name}' must be frozen=True: the "
                "semantics oracles assume recorded footprints are immutable",
            )


RULES = (
    _check_determinism,
    _check_mutable_defaults,
    _check_lock_discipline,
    _check_frozen_records,
)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source(source: str, path: str) -> List[LintError]:
    """Lint one file's source text; *path* drives rule scoping."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            LintError(path, err.lineno or 0, err.offset or 0, "TM000",
                      f"syntax error: {err.msg}")
        ]
    lines = source.splitlines()
    errors: List[LintError] = []
    for rule in RULES:
        for error in rule(tree, path):
            line_text = lines[error.line - 1] if 0 < error.line <= len(lines) else ""
            if SUPPRESS_MARK in line_text:
                continue
            errors.append(error)
    return sorted(errors, key=lambda e: (e.path, e.line, e.col, e.code))


def lint_paths(paths: Sequence) -> List[LintError]:
    """Lint files and/or directory trees of ``*.py`` files."""
    errors: List[LintError] = []
    for entry in paths:
        entry = Path(entry)
        if not entry.exists():
            raise FileNotFoundError(f"lint: no such file or directory: {entry}")
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            errors.extend(lint_source(file.read_text(), str(file)))
    return errors
