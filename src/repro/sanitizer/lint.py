"""Deprecated shim: the lint rules live in :mod:`repro.analysis` now.

PR 1 introduced TM001-TM004 here as a standalone AST lint.  The static
contract analyzer (``repro analyze``) absorbed them — same rules, same
messages, one framework — in :mod:`repro.analysis.passes.legacy`, next
to the repo-wide contract passes (TM101+).  This module keeps the
original public surface alive for existing imports and tests:

* :func:`lint_source` / :func:`lint_paths` run exactly the legacy
  rules (plus TM000 syntax reporting) and return :class:`LintError`
  rows, as before;
* the historical rule-constant names re-export from the new home;
* ``# tm-lint: ignore`` still suppresses (the framework honors it as
  a suppress-all marker alongside the newer ``# tm: ignore[TMnnn]``).

New code should import from :mod:`repro.analysis` and run
``repro analyze`` instead; see docs/ANALYSIS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.framework import analyze_paths, analyze_source, parse_rules
from repro.analysis.passes.legacy import (  # noqa: F401  (compat re-exports)
    BANNED_MODULES,
    DETERMINISM_SCOPE,
    FROZEN_SCOPE,
    FROZEN_SUFFIXES,
    MUTABLE_DEFAULT_CALLS,
    MUTATOR_METHODS,
)

SUPPRESS_MARK = "# tm-lint: ignore"

_LEGACY_RULES = parse_rules("TM001-TM004")


@dataclass(frozen=True)
class LintError:
    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _as_lint_errors(findings) -> List[LintError]:
    return [
        LintError(f.path, f.line, f.col, f.rule, f.message) for f in findings
    ]


def lint_source(source: str, path: str) -> List[LintError]:
    """Lint one file's source text; *path* drives rule scoping."""
    return _as_lint_errors(analyze_source(source, path, _LEGACY_RULES))


def lint_paths(paths: Sequence) -> List[LintError]:
    """Lint files and/or directory trees of ``*.py`` files."""
    findings, _ = analyze_paths(paths, _LEGACY_RULES)
    return _as_lint_errors(findings)
