"""Oracle replay for the trace-level CC engines (:mod:`repro.cc`).

The trace engines decide commit/abort per transaction from timed
:class:`~repro.cc.engine.TxnView` materializations.  Using the
``observer`` hook of :meth:`repro.cc.engine.TraceCC.run`, this module
rebuilds the exact multi-version history an algorithm committed —
every read carries the version (writer txn id) it actually observed —
and replays it through the :mod:`repro.semantics` serializability
oracle.  ``INITIAL`` (-1) in the engine coincides with
:data:`repro.semantics.INITIAL_VERSION`, so views translate directly.

This is the machinery behind the regression suite that asserts every
algorithm (bocc, focc, tocc, kahn, rococo_cc, two_phase_locking)
commits only serializable histories across seeds and contention
levels — the property Fig. 9's abort-rate comparison silently assumes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..cc.engine import TraceCC, TraceResult
from ..cc.trace import Trace
from ..runtime.events import EventBus
from ..runtime.recording import HistoryRecorder
from ..semantics import History
from ..semantics.serializability import explain_cycle, replay_serially, serialization_witness
from .report import SanitizeReport, Violation


def record_trace_history(algo: TraceCC, trace: Trace) -> Tuple[TraceResult, History]:
    """Run *algo* over *trace*, capturing the induced history.

    The engine publishes each transaction's fate on an
    :class:`~repro.runtime.events.EventBus` (explicit ``attempt`` and
    read ``version`` — the trace already knows them), and the shared
    :class:`~repro.runtime.recording.HistoryRecorder` rebuilds the
    history exactly as it does for simulator runs: one instrumentation
    path for both execution models.
    """
    bus = EventBus()
    recorder = HistoryRecorder()
    recorder.install(bus)
    result = algo.run(trace, bus=bus)
    return result, recorder.history


def check_trace_algorithm(
    algo: TraceCC,
    trace: Trace,
    check_aborted_snapshots: bool = False,
) -> SanitizeReport:
    """Serializability report for one algorithm over one trace.

    ``check_aborted_snapshots`` additionally grafts each aborted
    transaction's reads into the committed history (the opacity-style
    check).  It is off by default: trace-level transactions vanish on
    abort without retrying, so an inconsistent aborted snapshot cannot
    fault a zombie — it is a property of the timed read model, not a
    bug in the validator under test.
    """
    result, history = record_trace_history(algo, trace)
    rep = SanitizeReport(
        backend=algo.name,
        workload=f"trace[{len(trace)} txns]",
        attempts=result.total,
        committed=result.commits,
        aborted=result.aborts,
    )

    rw = history.rw_dependencies()
    cycle = explain_cycle(rw)
    if cycle is not None:
        rep.add(
            Violation(
                "serializability",
                f"{algo.name} committed a dependency cycle {cycle}",
                attempts=tuple(cycle),
            )
        )
    else:
        witness = serialization_witness(rw)
        if witness is not None and not replay_serially(history, witness):
            rep.add(
                Violation(
                    "serializability",
                    f"{algo.name}: witness failed serial replay",
                )
            )

    if check_aborted_snapshots:
        committed = set(history.committed)
        for txn_trace, decided in zip(trace, result.decisions):
            txn = txn_trace.txn
            if decided or not history.record(txn).reads:
                continue
            bad: Optional[list] = explain_cycle(
                history.rw_dependencies(committed | {txn})
            )
            if bad and txn in bad:
                rep.notes.append(
                    f"aborted txn {txn} observed an inconsistent snapshot "
                    f"(cycle {bad}) — benign without retry semantics"
                )
    return rep
