"""Runners: execute a batch of :class:`ExperimentSpec` cells.

The contract every runner honors:

* **Determinism** — ``run(specs)`` returns one :class:`RunStats` per
  spec, *in input order*, and the results are bit-identical whichever
  runner produced them.  Each spec is a self-contained deterministic
  simulation (its own Memory, its own seeded RNGs), so sharding cells
  across processes cannot change any cell's outcome — only the
  wall-clock time to produce them all.
* **Cache transparency** — give a runner a
  :class:`~repro.exec.cache.ResultCache` and it executes only the
  misses, filling hits from disk; the returned list is the same either
  way.
* **Graceful degradation** — :class:`ProcessPoolRunner` prefers
  ``fork`` (cheap), accepts ``spawn`` (workers rebuild specs from
  plain dicts, so nothing unpicklable crosses the boundary), and falls
  back to in-process serial execution when multiprocessing is
  unavailable or the pool dies.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence

from ..runtime import RunStats
from .cache import ResultCache
from .spec import ExperimentSpec

Progress = Optional[Callable[[str], None]]


def run_payload(payload: Dict) -> Dict:
    """Execute one spec given (and returning) plain dicts.

    Module-level and dict-in/dict-out on purpose: picklable under the
    ``spawn`` start method, and immune to any divergence between the
    parent's and the worker's in-memory objects.
    """
    spec = ExperimentSpec.from_dict(payload)
    return spec.execute().to_dict()


class Runner:
    """Shared cache-aware driving; subclasses supply ``_execute``."""

    name = "abstract"

    def __init__(self, cache: Optional[ResultCache] = None):
        self.cache = cache

    def run(
        self, specs: Sequence[ExperimentSpec], progress: Progress = None
    ) -> List[RunStats]:
        specs = list(specs)
        results: List[Optional[RunStats]] = [None] * len(specs)
        miss_indices: List[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                cached = self.cache.get(spec)
                if cached is not None:
                    results[index] = cached
                    if progress is not None:
                        progress(f"{spec.label()} [cached]")
                    continue
            miss_indices.append(index)
        fresh = self._execute([specs[i] for i in miss_indices], progress)
        for index, stats in zip(miss_indices, fresh):
            results[index] = stats
            if self.cache is not None:
                self.cache.put(specs[index], stats)
        return results  # type: ignore[return-value]

    def _execute(
        self, specs: List[ExperimentSpec], progress: Progress
    ) -> List[RunStats]:
        raise NotImplementedError


class SerialRunner(Runner):
    """One cell after another, in the calling process."""

    name = "serial"

    def _execute(
        self, specs: List[ExperimentSpec], progress: Progress
    ) -> List[RunStats]:
        results = []
        for spec in specs:
            stats = spec.execute()
            results.append(stats)
            if progress is not None:
                progress(f"{spec.label()} makespan={stats.makespan_ns / 1e6:.3f} ms")
        return results


def _pick_context():
    """The cheapest available start method (fork > spawn > None)."""
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None


class ProcessPoolRunner(Runner):
    """Shards cells across host cores; bit-identical to serial.

    Cells are submitted as individual ``apply_async`` handles and
    collected in input order, so the merge is deterministic regardless
    of which worker finished first.  A *pool-level* failure (broken
    pipe, lost worker, pool that cannot be built) salvages every cell
    whose result already arrived and reruns only the missing ones in
    this process — recorded in :attr:`fallback_reason` so harnesses can
    report it.  Cell-level exceptions raised by the workload itself
    propagate unchanged; for deadlines, retries and quarantine see
    :class:`~repro.exec.supervise.SupervisedRunner`.
    """

    name = "process-pool"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ):
        super().__init__(cache=cache)
        cpus = multiprocessing.cpu_count()
        self.max_workers = max(1, max_workers if max_workers is not None else cpus)
        self.fallback_reason: Optional[str] = None

    def _execute(
        self, specs: List[ExperimentSpec], progress: Progress
    ) -> List[RunStats]:
        if len(specs) <= 1 or self.max_workers == 1:
            return SerialRunner()._execute(specs, progress)
        context = _pick_context()
        if context is None:
            self.fallback_reason = "no multiprocessing start method"
            return SerialRunner()._execute(specs, progress)
        payloads = [spec.canonical() for spec in specs]
        workers = min(self.max_workers, len(specs))
        raw: List[Optional[Dict]] = [None] * len(specs)
        try:
            pool = context.Pool(processes=workers)
        except OSError as failure:  # can't even build a pool: run here.
            self.fallback_reason = f"{type(failure).__name__}: {failure}"
            return SerialRunner()._execute(specs, progress)
        try:
            # One handle per cell (not one bulk map): when the pool
            # dies mid-sweep, every cell that already finished is
            # salvaged and only the missing ones rerun serially.
            handles = [pool.apply_async(run_payload, (p,)) for p in payloads]
            for index, handle in enumerate(handles):
                try:
                    if self.fallback_reason is None:
                        raw[index] = handle.get()
                    elif handle.ready():
                        # The pool is dead, but this cell's result was
                        # delivered before it died: keep it.
                        raw[index] = handle.get()
                except (OSError, RuntimeError, EOFError, BrokenPipeError) as failure:
                    # Pool-level death (broken pipe, lost worker, …) —
                    # cell-level exceptions from run_payload propagate.
                    if self.fallback_reason is None:
                        self.fallback_reason = f"{type(failure).__name__}: {failure}"
        finally:
            pool.terminate()
            pool.join()
        results: List[RunStats] = []
        salvaged = 0
        for spec, entry in zip(specs, raw):
            if entry is None:
                stats = spec.execute()
            else:
                stats = RunStats.from_dict(entry)
                salvaged += 1
            results.append(stats)
            if progress is not None:
                progress(
                    f"{spec.label()} makespan={stats.makespan_ns / 1e6:.3f} ms"
                )
        if self.fallback_reason is not None and salvaged:
            self.fallback_reason += f" (salvaged {salvaged} completed cells)"
        return results


def default_runner(
    jobs: Optional[int] = None, cache: Optional[ResultCache] = None
) -> Runner:
    """``jobs`` semantics shared by the CLI and benchmarks: None/1 ->
    serial; N > 1 -> a pool of N; 0 -> a pool sized to the host."""
    if jobs is None or jobs == 1:
        return SerialRunner(cache=cache)
    return ProcessPoolRunner(max_workers=jobs or None, cache=cache)
