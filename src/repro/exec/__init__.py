"""The experiment-execution layer: spec → runner → cache → record.

Every figure and benchmark in this repo is, at bottom, a sweep over a
grid of deterministic simulations.  This package gives that sweep a
first-class shape:

* :class:`ExperimentSpec` — a frozen, hashable value naming one run
  (workload, backend, threads, scale, seed, faults, cost model);
* :class:`SerialRunner` / :class:`ProcessPoolRunner` — execute a batch
  of specs, bit-identically, serially or sharded across host cores;
* :class:`ResultCache` — content-addressed JSON results keyed by spec
  hash + code fingerprint, so re-running a figure only executes
  changed cells;
* :func:`write_bench_stamp` — the machine-readable ``BENCH_stamp.json``
  record (specs, cells, wall-clock, cache hit rate);
* :class:`SupervisedRunner` / :class:`SupervisorPolicy` — the
  resilient execution layer: per-cell deadlines, heartbeat hang
  detection, bounded seeded retries, poison-cell quarantine;
* :class:`SweepJournal` — the fsynced per-sweep WAL behind
  ``--resume``: a SIGKILLed sweep resumes bit-identically.

See docs/EXECUTION.md for the architecture and the determinism
argument.
"""

from .cache import ResultCache, code_fingerprint
from .journal import JournalState, SweepJournal, sweep_key
from .runner import (
    ProcessPoolRunner,
    Runner,
    SerialRunner,
    default_runner,
    run_payload,
)
from .spec import BACKEND_REGISTRY, WORKLOAD_REGISTRY, ExperimentSpec
from .stampfile import bench_stamp_payload, write_bench_stamp
from .supervise import SupervisedRunner, SupervisorPolicy

__all__ = [
    "BACKEND_REGISTRY",
    "ExperimentSpec",
    "JournalState",
    "ProcessPoolRunner",
    "ResultCache",
    "Runner",
    "SerialRunner",
    "SupervisedRunner",
    "SupervisorPolicy",
    "SweepJournal",
    "WORKLOAD_REGISTRY",
    "bench_stamp_payload",
    "code_fingerprint",
    "default_runner",
    "run_payload",
    "sweep_key",
    "write_bench_stamp",
]
