"""Content-addressed result cache for experiment cells.

A cached entry is one JSON file named by
``sha256(spec.content_hash() + code_fingerprint())``: re-running a
figure only executes cells whose spec *or* whose simulator code
changed.  The code fingerprint hashes every ``repro`` source file, so
any edit anywhere in the package — a backend tweak, a cost-model
constant — invalidates the whole cache rather than risking stale
results.  That is deliberately coarse: correctness of cached numbers
beats cleverness about which module could have mattered.

Entries store the canonical spec alongside the stats, so a cache
directory is also a self-describing record of what was measured.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from ..runtime import RunStats
from .spec import ExperimentSpec

#: cache format version; bump to orphan all previous entries.
CACHE_VERSION = 1

_fingerprint_memo: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """sha256 over every ``repro`` source file (path + contents).

    Memoized per process: the tree cannot change under a running
    sweep, and hashing ~60 files per cell lookup would swamp small
    cells.
    """
    global _fingerprint_memo
    if _fingerprint_memo is not None and not refresh:
        return _fingerprint_memo
    package_root = Path(__file__).resolve().parents[1]  # src/repro
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


class ResultCache:
    """JSON-file cache keyed by spec hash + code fingerprint."""

    def __init__(self, root: str, fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(self, spec: ExperimentSpec) -> str:
        blob = f"v{CACHE_VERSION}:{spec.content_hash()}:{self.fingerprint}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{self.key(spec)}.json"

    # ------------------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> Optional[RunStats]:
        """The cached stats for *spec*, or None (counts hit/miss)."""
        path = self._path(spec)
        try:
            with open(path) as source:
                entry = json.load(source)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return RunStats.from_dict(entry["stats"])

    def put(self, spec: ExperimentSpec, stats: RunStats) -> None:
        """Store atomically (write-rename), so a killed sweep never
        leaves a torn entry for the next run to trust."""
        path = self._path(spec)
        entry = {
            "version": CACHE_VERSION,
            "spec": spec.canonical(),
            "fingerprint": self.fingerprint,
            "stats": stats.to_dict(),
        }
        tmp = path.with_suffix(".tmp-%d" % os.getpid())
        with open(tmp, "w") as sink:
            json.dump(entry, sink, sort_keys=True, indent=1)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
