"""Supervised sweep execution: deadlines, retries, quarantine, resume.

:class:`~repro.exec.runner.ProcessPoolRunner` trusts its workers: a
hung cell stalls the whole sweep, a killed worker can wedge the pool,
and the blanket fallback used to rerun *everything* serially.  The
:class:`SupervisedRunner` here removes that trust, one mechanism per
failure mode:

* **deadlines** — every cell runs in its own worker process with a
  per-cell wall-clock deadline; a cell that blows it is killed and
  retried (``runner.timeouts``).
* **heartbeats** — workers beat a shared timestamp array from a
  daemon thread; a process that stops beating (frozen, SIGSTOPped,
  or dead before its first beat) is detected long before the deadline
  and killed (failure kind ``hang``).
* **crash detection** — a worker that exits without reporting (a
  SIGKILL, an ``os._exit``, an OOM kill) is detected via its exit
  code and retried (failure kind ``crash``).
* **bounded retries** — each failing cell is retried up to
  ``max_retries`` times with deterministically seeded exponential
  backoff (``random.Random(f"{seed}:{spec_hash}:{attempt}")`` — no
  ambient entropy, so a fault campaign replays exactly).
* **quarantine** — a cell that fails every attempt is recorded with
  full diagnostics (journal + :attr:`SupervisedRunner.quarantined`)
  and *skipped*; one poison cell can no longer sink a sweep.
* **resume** — completed cells are journaled to an fsynced WAL
  (:mod:`repro.exec.journal`); a SIGKILLed sweep resumed from its
  journal serves those cells without re-execution and produces a
  bit-identical ``BENCH_stamp.json`` (simulated results are pure
  functions of their specs, so salvage cannot change a single byte).

The wall clock appears in this module *only* as the supervisor's own
scheduling clock (deadlines, heartbeats, backoff pacing for host
processes) — it never reaches a result.  Cell outcomes remain
functions of (spec, seed) alone; the kill/resume bit-identity test in
``tests/exec/test_supervise.py`` is the proof.

Supervision telemetry flows through the observability layer: counts
on a :class:`~repro.obs.metrics.MetricsRegistry` (the ``runner.*``
names declared in :mod:`repro.analysis.registry`) and retry/
quarantine instant :class:`~repro.obs.spans.Marker` events on a
dedicated ``supervisor`` lane, timestamped by a deterministic
sequence number rather than the wall clock.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import random
import signal
import threading
from collections import deque
from dataclasses import dataclass
from queue import Empty
from typing import Dict, List, Optional, Sequence

# The supervisor's scheduling clock (see the module docstring): every
# read below times *host* processes, never simulated results.
import time  # tm: ignore[TM101]

from ..obs.metrics import RETRY_BOUNDS, MetricsRegistry
from ..obs.spans import Marker
from ..runtime import RunStats
from .cache import ResultCache
from .journal import SweepJournal
from .runner import Runner, _pick_context, run_payload
from .spec import ExperimentSpec

Progress = Optional[object]

#: how long a hang-faulted worker sleeps; any sane deadline fires first.
_HANG_SLEEP_S = 3600.0
_CRASH_EXIT_CODE = 86


def _now() -> float:
    return time.monotonic()  # tm: ignore[TM101]


def _sleep(seconds: float) -> None:
    time.sleep(seconds)  # tm: ignore[TM101]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs for :class:`SupervisedRunner`; all timings wall-clock."""

    #: per-cell deadline in seconds; None disables deadline kills.
    timeout_s: Optional[float] = None
    #: worker heartbeat period; None disables heartbeat hang detection.
    heartbeat_s: Optional[float] = 0.5
    #: missed beats before a worker counts as hung.
    heartbeat_misses: int = 10
    #: retries per cell after its first failure, before quarantine.
    max_retries: int = 2
    #: exponential backoff between attempts (base * 2^attempt, jittered
    #: by a seeded RNG, capped).
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0

    @property
    def stale_after_s(self) -> Optional[float]:
        if self.heartbeat_s is None:
            return None
        return self.heartbeat_s * self.heartbeat_misses

    def backoff_s(self, spec_hash: str, attempt: int) -> float:
        """Deterministic jittered backoff: a retry campaign replays
        identically because the jitter RNG is seeded from the cell."""
        rng = random.Random(f"{self.seed}:{spec_hash}:{attempt}")
        raw = self.backoff_base_s * (2 ** attempt) * (0.5 + rng.random())
        return min(self.backoff_cap_s, raw)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _beat_forever(heartbeats, slot: int, period_s: float) -> None:
    while True:
        heartbeats[slot] = _now()
        _sleep(period_s)


def _supervised_worker(
    queue, heartbeats, slot, index, attempt, payload, fault, heartbeat_s
) -> None:
    """One cell in one process.  Module-level and dict-in/dict-out so
    it pickles under ``spawn``.  *fault* applies a deterministic
    worker-fault model (:mod:`repro.faults.worker`) in-situ."""
    if fault == "hang":
        # Frozen before the first heartbeat: the supervisor sees a
        # silent worker (heartbeat staleness) or a blown deadline.
        _sleep(_HANG_SLEEP_S)
        os._exit(_CRASH_EXIT_CODE)
    if heartbeats is not None:
        threading.Thread(
            target=_beat_forever,
            args=(heartbeats, slot, heartbeat_s or 0.5),
            daemon=True,
        ).start()
    if fault == "crash":
        if hasattr(signal, "SIGKILL"):
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(_CRASH_EXIT_CODE)  # non-POSIX stand-in
    try:
        out = run_payload(payload)
    except BaseException as failure:  # report, don't vanish
        queue.put(("error", index, attempt, f"{type(failure).__name__}: {failure}"))
        return
    if fault == "garbage":
        out = {"oops": "not a RunStats payload"}
    queue.put(("ok", index, attempt, out))


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------
@dataclass
class _Running:
    process: object
    slot: int
    index: int
    attempt: int
    started_s: float
    fault: Optional[str]


class SupervisedRunner(Runner):
    """A :class:`Runner` that survives crashed, hung and killed
    workers, quarantines poison cells, and resumes from a journal.

    ``run()`` returns one entry per spec in input order, as every
    runner does — but a quarantined cell's entry is ``None`` (with
    diagnostics in :attr:`quarantined`), so callers must be prepared
    for holes when they opt into supervision.
    """

    name = "supervised"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        policy: Optional[SupervisorPolicy] = None,
        journal: Optional[str] = None,
        resume: bool = True,
        worker_faults=None,
        in_process: bool = False,
    ):
        super().__init__(cache=cache)
        # --jobs semantics: None/1 -> one worker, 0 -> host-sized, N -> N.
        if max_workers is None:
            workers = 1
        elif max_workers == 0:
            workers = multiprocessing.cpu_count()
        else:
            workers = max(1, max_workers)
        self.max_workers = workers
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.journal_path = journal
        self.resume = resume
        #: anything with ``fault_for(index, attempt) -> Optional[str]``
        #: (:class:`repro.faults.worker.WorkerFaultPlan`).
        self.worker_faults = worker_faults
        #: run cells in the calling process (no kill-based isolation;
        #: faults become raised failures) — deterministic and fast,
        #: used by tests and as the no-multiprocessing fallback.
        self.in_process = in_process
        self.metrics = MetricsRegistry()
        self.markers: List[Marker] = []
        #: input index -> quarantine diagnostics for this run.
        self.quarantined: Dict[int, Dict] = {}
        self.journal_hits = 0
        self.retries = 0
        self.fallback_reason: Optional[str] = None
        self._marker_seq = 0

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec], progress=None) -> List[RunStats]:
        specs = list(specs)
        results: List[Optional[RunStats]] = [None] * len(specs)
        self.quarantined = {}
        reg = self.metrics
        pending: List[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                cached = self.cache.get(spec)
                if cached is not None:
                    results[index] = cached
                    if progress is not None:
                        progress(f"{spec.label()} [cached]")
                    continue
            pending.append(index)
        journal = None
        if self.journal_path:
            journal = SweepJournal(self.journal_path)
            state = journal.start(
                [spec.content_hash() for spec in specs], resume=self.resume
            )
            if state.corrupt:
                reg.count("runner.journal_corrupt", len(state.corrupt))
            pending = self._salvage(specs, pending, results, state, progress)
        try:
            if pending:
                self._supervise(specs, pending, results, journal, progress)
        finally:
            if journal is not None:
                journal.close()
        return results  # type: ignore[return-value]

    def _salvage(self, specs, pending, results, state, progress) -> List[int]:
        """Serve completed/poisoned cells from the loaded journal."""
        reg = self.metrics
        still: List[int] = []
        for index in pending:
            spec = specs[index]
            content = spec.content_hash()
            entry = state.results.get(content)
            if entry is not None:
                stats = self._decode(spec, entry)
                if isinstance(stats, RunStats):
                    results[index] = stats
                    self.journal_hits += 1
                    reg.count("runner.journal_hits")
                    if self.cache is not None:
                        self.cache.put(spec, stats)
                    if progress is not None:
                        progress(f"{spec.label()} [journal]")
                    continue
                reg.count("runner.journal_corrupt")
            diagnostics = state.quarantined.get(content)
            if diagnostics is not None:
                self.quarantined[index] = diagnostics
                reg.count("runner.quarantined")
                self._mark("quarantine", spec, {"loaded": True})
                if progress is not None:
                    progress(f"{spec.label()} [quarantined]")
                continue
            still.append(index)
        return still

    # ------------------------------------------------------------------
    def _supervise(self, specs, pending, results, journal, progress) -> None:
        context = None if self.in_process else _pick_context()
        if context is None:
            if not self.in_process:
                self.fallback_reason = "no multiprocessing start method"
            self._supervise_in_process(specs, pending, results, journal, progress)
        else:
            self._supervise_processes(
                context, specs, pending, results, journal, progress
            )

    # -- shared bookkeeping --------------------------------------------
    def _mark(self, kind: str, spec: ExperimentSpec, args: Dict) -> None:
        # Instant markers on a dedicated supervisor lane; the timestamp
        # is a deterministic sequence number, never the wall clock.
        self._marker_seq += 1
        self.markers.append(
            Marker(
                name=f"{kind}:{spec.label()}",
                cat="runner",
                pid="runner",
                lane="supervisor",
                ts_ns=float(self._marker_seq),
                args=args,
            )
        )

    def _decode(self, spec: ExperimentSpec, payload):
        """A validated :class:`RunStats` for *spec*, or an error string.

        Every :class:`RunStats` field defaults, so ``from_dict`` alone
        would happily launder garbage into an empty stats object; the
        workload check is what makes ``garbage-output`` detectable.
        """
        if not isinstance(payload, dict):
            return f"worker payload is {type(payload).__name__}, not a dict"
        if payload.get("workload") != spec.workload or "makespan_ns" not in payload:
            return "worker payload does not describe this cell (garbage output?)"
        try:
            return RunStats.from_dict(payload)
        except Exception as failure:
            return f"undecodable worker payload: {type(failure).__name__}: {failure}"

    def _accept(self, spec, index, attempt, stats, results, journal, progress):
        results[index] = stats
        reg = self.metrics
        reg.count("runner.cells")
        reg.observe("runner.attempts", attempt + 1, RETRY_BOUNDS)
        if journal is not None:
            journal.record_result(spec.content_hash(), stats.to_dict())
        if self.cache is not None:
            self.cache.put(spec, stats)
        if progress is not None:
            progress(f"{spec.label()} makespan={stats.makespan_ns / 1e6:.3f} ms")

    def _after_failure(
        self, spec, index, attempt, kind, detail, failures, journal, progress
    ) -> Optional[float]:
        """Record one failed attempt.  Returns the backoff (seconds)
        before the retry, or None when the cell is quarantined."""
        reg = self.metrics
        failures.setdefault(index, []).append(
            {"attempt": attempt, "kind": kind, "detail": detail}
        )
        reg.count(f"runner.failures.{kind}")
        if kind == "timeout":
            reg.count("runner.timeouts")
        if attempt < self.policy.max_retries:
            self.retries += 1
            reg.count("runner.retries")
            self._mark("retry", spec, {"kind": kind, "attempt": attempt})
            if progress is not None:
                progress(f"{spec.label()} retry #{attempt + 1} after {kind}")
            return self.policy.backoff_s(spec.content_hash(), attempt)
        diagnostics = {
            "spec": spec.canonical(),
            "attempts": attempt + 1,
            "failures": failures[index],
        }
        self.quarantined[index] = diagnostics
        reg.count("runner.quarantined")
        self._mark("quarantine", spec, {"kind": kind, "attempts": attempt + 1})
        if journal is not None:
            journal.record_quarantine(spec.content_hash(), diagnostics)
        if progress is not None:
            progress(
                f"{spec.label()} QUARANTINED after {attempt + 1} attempts ({kind})"
            )
        return None

    def _fault_for(self, index: int, attempt: int) -> Optional[str]:
        if self.worker_faults is None:
            return None
        return self.worker_faults.fault_for(index, attempt)

    # -- in-process mode -----------------------------------------------
    def _supervise_in_process(self, specs, pending, results, journal, progress):
        """No process isolation: crash/hang faults become immediate
        failures (retry/quarantine still exercised deterministically);
        real hangs cannot be preempted here — that needs processes."""
        failures: Dict[int, List] = {}
        for index in pending:
            spec = specs[index]
            attempt = 0
            while True:
                fault = self._fault_for(index, attempt)
                kind = detail = None
                payload = None
                if fault == "crash":
                    kind, detail = "crash", "simulated worker crash (in-process)"
                elif fault == "hang":
                    kind, detail = "hang", "simulated worker hang (in-process)"
                else:
                    try:
                        payload = run_payload(spec.canonical())
                    except Exception as failure:
                        kind = "error"
                        detail = f"{type(failure).__name__}: {failure}"
                if payload is not None and fault == "garbage":
                    payload = {"oops": "not a RunStats payload"}
                if payload is not None and fault == "partial-write":
                    if journal is not None:
                        journal.record_torn_result(spec.content_hash(), payload)
                    kind, detail = "partial-write", "journal entry torn mid-write"
                elif payload is not None:
                    decoded = self._decode(spec, payload)
                    if isinstance(decoded, RunStats):
                        self._accept(
                            spec, index, attempt, decoded, results, journal, progress
                        )
                        break
                    kind, detail = "garbage-output", decoded
                backoff = self._after_failure(
                    spec, index, attempt, kind, detail, failures, journal, progress
                )
                if backoff is None:
                    break
                if backoff > 0:
                    _sleep(backoff)
                attempt += 1

    # -- process mode --------------------------------------------------
    def _kill(self, process) -> None:
        process.terminate()
        process.join(0.5)
        if process.is_alive():
            getattr(process, "kill", process.terminate)()
            process.join(1.0)

    def _supervise_processes(
        self, context, specs, pending, results, journal, progress
    ) -> None:
        workers = min(self.max_workers, len(pending))
        queue = context.Queue()
        heartbeats = None
        if self.policy.heartbeat_s is not None:
            heartbeats = context.Array("d", workers, lock=False)
        free = list(range(workers - 1, -1, -1))
        todo = deque(pending)
        delayed: List = []  # (ready_s, index) heap
        attempts: Dict[int, int] = {index: 0 for index in pending}
        failures: Dict[int, List] = {}
        running: Dict[int, _Running] = {}

        def launch(index: int) -> None:
            slot = free.pop()
            attempt = attempts[index]
            fault = self._fault_for(index, attempt)
            if heartbeats is not None:
                heartbeats[slot] = 0.0
            process = context.Process(
                target=_supervised_worker,
                args=(
                    queue,
                    heartbeats,
                    slot,
                    index,
                    attempt,
                    specs[index].canonical(),
                    fault,
                    self.policy.heartbeat_s,
                ),
                daemon=True,
            )
            process.start()
            running[index] = _Running(process, slot, index, attempt, _now(), fault)

        def fail(entry: _Running, kind: str, detail: str) -> None:
            running.pop(entry.index, None)
            free.append(entry.slot)
            backoff = self._after_failure(
                specs[entry.index],
                entry.index,
                entry.attempt,
                kind,
                detail,
                failures,
                journal,
                progress,
            )
            attempts[entry.index] = entry.attempt + 1
            if backoff is not None:
                heapq.heappush(delayed, (_now() + backoff, entry.index))

        def handle(message) -> None:
            kind, index, attempt, payload = message
            entry = running.get(index)
            if entry is None or entry.attempt != attempt:
                return  # stale report from an attempt we already killed
            if kind == "error":
                entry.process.join(1.0)
                fail(entry, "error", payload)
                return
            if entry.fault == "partial-write":
                if journal is not None:
                    journal.record_torn_result(
                        specs[index].content_hash(), payload
                    )
                entry.process.join(1.0)
                fail(entry, "partial-write", "journal entry torn mid-write")
                return
            decoded = self._decode(specs[index], payload)
            if not isinstance(decoded, RunStats):
                entry.process.join(1.0)
                fail(entry, "garbage-output", decoded)
                return
            entry.process.join(1.0)
            running.pop(index, None)
            free.append(entry.slot)
            self._accept(
                specs[index], index, entry.attempt, decoded, results, journal, progress
            )

        def drain_pending_messages() -> None:
            while True:
                try:
                    handle(queue.get_nowait())
                except Empty:
                    return

        try:
            while todo or delayed or running:
                now = _now()
                while free and delayed and delayed[0][0] <= now:
                    _, index = heapq.heappop(delayed)
                    launch(index)
                while free and todo:
                    launch(todo.popleft())
                try:
                    handle(queue.get(timeout=0.02))
                except Empty:
                    pass
                drain_pending_messages()
                now = _now()
                for entry in list(running.values()):
                    if running.get(entry.index) is not entry:
                        continue
                    deadline = self.policy.timeout_s
                    if deadline is not None and now - entry.started_s > deadline:
                        self._kill(entry.process)
                        fail(entry, "timeout", f"deadline {deadline:g}s exceeded")
                        continue
                    stale = self.policy.stale_after_s
                    if stale is not None and heartbeats is not None:
                        last = max(heartbeats[entry.slot], entry.started_s)
                        if now - last > stale:
                            self._kill(entry.process)
                            fail(
                                entry,
                                "hang",
                                f"no heartbeat for {now - last:.2f}s",
                            )
                            continue
                    if not entry.process.is_alive():
                        # The worker may have reported and *then* died;
                        # give the queue feeder a moment to surface it.
                        patience = _now() + 0.3
                        while (
                            running.get(entry.index) is entry and _now() < patience
                        ):
                            drain_pending_messages()
                            if running.get(entry.index) is entry:
                                _sleep(0.01)
                        if running.get(entry.index) is entry:
                            fail(
                                entry,
                                "crash",
                                "worker exited with code "
                                f"{entry.process.exitcode} before reporting",
                            )
        finally:
            for entry in running.values():
                self._kill(entry.process)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        reg = self.metrics
        executed = int(reg.counters.get("runner.cells", 0))
        parts = [f"{executed} executed"]
        if self.journal_hits:
            parts.append(f"{self.journal_hits} from journal")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        return "supervised: " + ", ".join(parts)
