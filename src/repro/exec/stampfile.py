"""Machine-readable sweep results: ``BENCH_stamp.json``.

One file per harness invocation, recording what was run (the canonical
specs), what came out (the matrix cells), how long it took
(wall-clock), and how much the :class:`~repro.exec.cache.ResultCache`
saved (hit rate) — the perf trajectory of the repo, trackable across
commits and uploadable as a CI artifact.
"""

from __future__ import annotations

import json
import os
import platform

# Run provenance (when was this stamp generated) is the one sanctioned
# wall-clock read: it annotates the artifact, never the results, and
# the stamp equality check excludes it.  SOURCE_DATE_EPOCH (the
# reproducible-builds convention) pins it — and zeroes wall_clock_s —
# so two runs of the same sweep can be compared byte-for-byte.
import time  # tm: ignore[TM101]
from dataclasses import asdict
from typing import Optional, Sequence

from .cache import ResultCache, code_fingerprint
from .runner import Runner
from .spec import ExperimentSpec

STAMP_VERSION = 1


def _provenance_clock(wall_clock_s: float):
    """(generated_at, wall_clock_s), honoring SOURCE_DATE_EPOCH.

    With the env var set, the stamp's two wall-clock fields become
    functions of it alone — the kill/resume bit-identity guarantee
    (and the CI crash-smoke byte comparison) rests on this.
    """
    pinned = os.environ.get("SOURCE_DATE_EPOCH")
    if pinned is not None:
        try:
            epoch = int(pinned)
        except ValueError:
            epoch = 0
        # Not an ambient read: a pure function of the pinned epoch.
        stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(epoch))  # tm: ignore[TM101]
        return stamp, 0.0
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())  # tm: ignore[TM101]
    return stamp, round(wall_clock_s, 6)


def bench_stamp_payload(
    matrix,
    specs: Sequence[ExperimentSpec],
    wall_clock_s: float,
    runner: Optional[Runner] = None,
    cache: Optional[ResultCache] = None,
    results=None,
) -> dict:
    """The JSON-ready record of one sweep.

    *results* (the runner's per-spec :class:`RunStats`, in spec order)
    adds a ``metrics`` section when any cell ran with observability:
    per-cell snapshots plus their merged aggregate.  Snapshots merge
    counter-by-counter and bucket-by-bucket, so a pool-sharded sweep
    stamps byte-identically to a serial one.
    """
    generated_at, wall_clock_s = _provenance_clock(wall_clock_s)
    payload = {
        "version": STAMP_VERSION,
        "generated_at": generated_at,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "code_fingerprint": code_fingerprint(),
        "runner": runner.name if runner is not None else "serial",
        "wall_clock_s": wall_clock_s,
        "n_specs": len(specs),
        "specs": [spec.canonical() for spec in specs],
        "cells": [asdict(cell) for cell in matrix.cells],
    }
    if isinstance(runner, Runner) and getattr(runner, "fallback_reason", None):
        payload["runner_fallback"] = runner.fallback_reason
    quarantined = getattr(runner, "quarantined", None)
    if quarantined:
        # Quarantine diagnostics ride in the stamp so a partial sweep
        # is still a complete record: which cells are missing, and why.
        payload["quarantined"] = [
            quarantined[index] for index in sorted(quarantined)
        ]
    if cache is not None:
        payload["cache"] = {
            "root": str(cache.root),
            "lookups": cache.lookups,
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 6),
        }
    if results is not None:
        observed = [
            (spec, stats)
            for spec, stats in zip(specs, results)
            if getattr(stats, "metrics", None) is not None
        ]
        if observed:
            from ..obs import merge_metric_snapshots

            payload["metrics"] = {
                "cells": [
                    {"label": spec.label(), "snapshot": stats.metrics}
                    for spec, stats in observed
                ],
                "merged": merge_metric_snapshots(
                    [stats.metrics for _, stats in observed]
                ),
            }
    return payload


def write_bench_stamp(
    path: str,
    matrix,
    specs: Sequence[ExperimentSpec],
    wall_clock_s: float,
    runner: Optional[Runner] = None,
    cache: Optional[ResultCache] = None,
    results=None,
) -> dict:
    """Write the sweep record to *path*; returns the payload."""
    payload = bench_stamp_payload(
        matrix, specs, wall_clock_s, runner, cache, results=results
    )
    with open(path, "w") as sink:
        json.dump(payload, sink, indent=1, sort_keys=True)
        sink.write("\n")
    return payload
