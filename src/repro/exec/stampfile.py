"""Machine-readable sweep results: ``BENCH_stamp.json``.

One file per harness invocation, recording what was run (the canonical
specs), what came out (the matrix cells), how long it took
(wall-clock), and how much the :class:`~repro.exec.cache.ResultCache`
saved (hit rate) — the perf trajectory of the repo, trackable across
commits and uploadable as a CI artifact.
"""

from __future__ import annotations

import json
import platform

# Run provenance (when was this stamp generated) is the one sanctioned
# wall-clock read: it annotates the artifact, never the results, and
# the stamp equality check excludes it.
import time  # tm: ignore[TM101]
from dataclasses import asdict
from typing import Optional, Sequence

from .cache import ResultCache, code_fingerprint
from .runner import Runner
from .spec import ExperimentSpec

STAMP_VERSION = 1


def bench_stamp_payload(
    matrix,
    specs: Sequence[ExperimentSpec],
    wall_clock_s: float,
    runner: Optional[Runner] = None,
    cache: Optional[ResultCache] = None,
    results=None,
) -> dict:
    """The JSON-ready record of one sweep.

    *results* (the runner's per-spec :class:`RunStats`, in spec order)
    adds a ``metrics`` section when any cell ran with observability:
    per-cell snapshots plus their merged aggregate.  Snapshots merge
    counter-by-counter and bucket-by-bucket, so a pool-sharded sweep
    stamps byte-identically to a serial one.
    """
    payload = {
        "version": STAMP_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),  # tm: ignore[TM101]
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "code_fingerprint": code_fingerprint(),
        "runner": runner.name if runner is not None else "serial",
        "wall_clock_s": round(wall_clock_s, 6),
        "n_specs": len(specs),
        "specs": [spec.canonical() for spec in specs],
        "cells": [asdict(cell) for cell in matrix.cells],
    }
    if isinstance(runner, Runner) and getattr(runner, "fallback_reason", None):
        payload["runner_fallback"] = runner.fallback_reason
    if cache is not None:
        payload["cache"] = {
            "root": str(cache.root),
            "lookups": cache.lookups,
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 6),
        }
    if results is not None:
        observed = [
            (spec, stats)
            for spec, stats in zip(specs, results)
            if getattr(stats, "metrics", None) is not None
        ]
        if observed:
            from ..obs import merge_metric_snapshots

            payload["metrics"] = {
                "cells": [
                    {"label": spec.label(), "snapshot": stats.metrics}
                    for spec, stats in observed
                ],
                "merged": merge_metric_snapshots(
                    [stats.metrics for _, stats in observed]
                ),
            }
    return payload


def write_bench_stamp(
    path: str,
    matrix,
    specs: Sequence[ExperimentSpec],
    wall_clock_s: float,
    runner: Optional[Runner] = None,
    cache: Optional[ResultCache] = None,
    results=None,
) -> dict:
    """Write the sweep record to *path*; returns the payload."""
    payload = bench_stamp_payload(
        matrix, specs, wall_clock_s, runner, cache, results=results
    )
    with open(path, "w") as sink:
        json.dump(payload, sink, indent=1, sort_keys=True)
        sink.write("\n")
    return payload
