"""ExperimentSpec: the canonical name of one simulated run.

A spec is a *value*, not a process: a frozen dataclass whose fields
pin down everything that influences a run's outcome — workload,
backend, thread count, scale, seed, fault plan, cost-model overrides.
Because the simulator is deterministic (every RNG is seeded from spec
fields), the spec fully determines the resulting :class:`RunStats`;
that is what makes specs shardable across processes
(:mod:`repro.exec.runner`) and cacheable by content hash
(:mod:`repro.exec.cache`).

Workloads and backends are named by *registry key*, not by object:
names survive pickling, hashing and JSON round-trips, and the
registries here are the single source of truth the CLI and the bench
harness both use (they used to each keep their own dict).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..cluster import ClusterTMBackend
from ..runtime import (
    CoarseLockBackend,
    CostModel,
    RococoTMBackend,
    RunStats,
    SequentialBackend,
    SnapshotIsolationBackend,
    TinySTMBackend,
    TinySTMEtlBackend,
    TsxBackend,
)
from ..stamp import (
    ALL_WORKLOADS,
    CONTENTION_VARIANTS,
    EXTRA_WORKLOADS,
    run_stamp,
)

#: backend registry key -> zero-argument factory.  Keys are the
#: backends' ``name`` attributes, so ``RunStats.backend`` matches the
#: spec's ``backend`` field on every plain run.
BACKEND_REGISTRY = {
    cls.name: cls
    for cls in (
        SequentialBackend,
        CoarseLockBackend,
        TinySTMBackend,
        TinySTMEtlBackend,
        TsxBackend,
        RococoTMBackend,
        SnapshotIsolationBackend,
        ClusterTMBackend,
    )
}

#: backends whose validation path accepts fault schedules (the chaos
#: layer injects into each node's FPGA engine).
FAULT_CAPABLE_BACKENDS = ("ROCoCoTM", "ClusterTM")

#: workload registry key -> StampWorkload subclass.
WORKLOAD_REGISTRY = {
    cls.name: cls for cls in ALL_WORKLOADS + CONTENTION_VARIANTS + EXTRA_WORKLOADS
}


@dataclass(frozen=True)
class ExperimentSpec:
    """One (workload, backend, threads, scale, seed, faults, costs) cell."""

    workload: str
    backend: str
    n_threads: int
    scale: float = 0.5
    seed: int = 1
    #: run the workload's final-state invariant check.
    verify: bool = True
    #: named fault schedule (``repro.faults.BUILTIN_SCHEDULES``);
    #: requires the ROCoCoTM backend, as in the CLI.
    faults: Optional[str] = None
    fault_seed: int = 0
    #: irrevocable escape hatch after N consecutive aborts (chaos runs).
    irrevocable_after: Optional[int] = None
    #: sorted ``((field, value), ...)`` CostModel overrides; a tuple so
    #: the spec stays hashable and the hash stays order-independent.
    cost_model: Tuple[Tuple[str, float], ...] = ()
    #: attach the observability layer (:mod:`repro.obs`): the returned
    #: stats carry a metric snapshot in ``stats.metrics``.  Part of the
    #: content hash — an observed run is a different (if decision-
    #: identical) experiment from an unobserved one.
    obs: bool = False
    #: shard count for the ClusterTM backend (docs/CLUSTER.md); 1 for
    #: every single-node backend.
    shards: int = 1

    def __post_init__(self):
        if self.workload not in WORKLOAD_REGISTRY:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.backend not in BACKEND_REGISTRY:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.n_threads < 1:
            raise ValueError("n_threads must be at least 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.faults is not None and self.backend not in FAULT_CAPABLE_BACKENDS:
            raise ValueError(
                "fault schedules inject into the FPGA validation path "
                "and require the ROCoCoTM or ClusterTM backend"
            )
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.shards > 1 and self.backend != "ClusterTM":
            raise ValueError(
                f"shards={self.shards} requires the ClusterTM backend "
                f"(got {self.backend!r})"
            )
        valid = {f for f in CostModel.__dataclass_fields__}
        for name, _ in self.cost_model:
            if name not in valid:
                raise ValueError(f"unknown CostModel field {name!r}")
        # Canonicalize override order so equal specs hash equally.
        object.__setattr__(
            self, "cost_model", tuple(sorted(self.cost_model))
        )

    # ------------------------------------------------------------------
    def canonical(self) -> Dict:
        """A JSON-ready dict with deterministic key order."""
        payload = asdict(self)
        payload["cost_model"] = [list(pair) for pair in self.cost_model]
        return {key: payload[key] for key in sorted(payload)}

    def content_hash(self) -> str:
        """Stable sha256 over the canonical form — the cache key's
        spec half (:mod:`repro.exec.cache` adds the code half)."""
        blob = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload: Dict) -> "ExperimentSpec":
        payload = dict(payload)
        payload["cost_model"] = tuple(
            (str(name), value) for name, value in payload.get("cost_model", ())
        )
        return cls(**payload)

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with *changes* applied (dataclasses.replace)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def make_backend(self):
        if self.backend == "ClusterTM":
            return ClusterTMBackend(
                shards=self.shards,
                faults=self.faults,
                fault_seed=self.fault_seed,
                irrevocable_after=self.irrevocable_after,
            )
        if self.faults is not None:
            from ..faults import build_chaos_backend

            return build_chaos_backend(
                self.faults,
                self.fault_seed,
                irrevocable_after=self.irrevocable_after,
            )
        return BACKEND_REGISTRY[self.backend]()

    def make_cost_model(self) -> Optional[CostModel]:
        if not self.cost_model:
            return None
        return CostModel(**dict(self.cost_model))

    def execute(self) -> RunStats:
        """Run the cell to completion; deterministic in the spec."""
        collector = None
        instrument = None
        if self.obs:
            from ..obs import MetricsCollector

            collector = MetricsCollector()
            instrument = collector.instrument
        stats = run_stamp(
            WORKLOAD_REGISTRY[self.workload],
            self.make_backend(),
            self.n_threads,
            scale=self.scale,
            seed=self.seed,
            cost_model=self.make_cost_model(),
            verify=self.verify,
            instrument=instrument,
        )
        if collector is not None:
            stats.metrics = collector.snapshot()
        return stats

    def label(self) -> str:
        tag = f"{self.workload}/{self.backend}@{self.n_threads}t"
        if self.shards > 1:
            tag += f"x{self.shards}s"
        if self.faults:
            tag += f"+{self.faults}"
        return tag
