"""The sweep journal: an append-only, fsynced JSONL write-ahead log.

A long sweep is only as durable as its least durable shard.  The
:class:`~repro.exec.cache.ResultCache` already makes *individual*
cells durable, but it is an optimization the operator opts into and
its entries are anonymous files — there is no record of which sweep
produced them or how far that sweep got.  The journal is the sweep's
own WAL: one JSONL file, opened by :class:`~repro.exec.supervise.
SupervisedRunner`, fsynced after every record, that a SIGKILLed sweep
can be resumed from with ``--resume`` — completed cells are served
from the journal (never re-executed) and the resumed run's
``BENCH_stamp.json`` is bit-identical to an uninterrupted one.

File format (one JSON object per line):

* ``{"type": "header", "version": 1, "sweep_key", "fingerprint",
  "n_specs"}`` — written once when a journal starts fresh.  The
  fingerprint is the :func:`~repro.exec.cache.code_fingerprint`; a
  journal written by different code is discarded wholesale on load
  (same philosophy as the cache: correctness beats salvage).
* ``{"type": "result", "spec": <content hash>, "stats": {...},
  "crc": ...}`` — one completed cell.
* ``{"type": "quarantine", "spec": <content hash>,
  "diagnostics": {...}, "crc": ...}`` — one poisoned cell; on resume
  it is *skipped*, not retried (quarantine is sticky by design).

Every record carries a content checksum (``crc``), so a torn or
bit-flipped line is detected on load and tolerated — reported in
:attr:`JournalState.corrupt`, never a crash; the affected cell simply
re-runs.  A torn tail (the classic crash-mid-write) is additionally
healed on reopen: appends start on a fresh line.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .cache import code_fingerprint

JOURNAL_VERSION = 1


def _canonical(record: Dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _crc(record: Dict) -> str:
    """Content checksum over a record (its ``crc`` field excluded)."""
    body = {key: value for key, value in record.items() if key != "crc"}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()[:16]


def sweep_key(spec_hashes: Sequence[str], fingerprint: str) -> str:
    """Identity of one sweep: the cells it names plus the code that
    will run them.  Stable under resume; different grids differ."""
    blob = _canonical({"specs": list(spec_hashes), "fingerprint": fingerprint})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class JournalState:
    """What a journal file held when it was opened."""

    header: Optional[Dict] = None
    #: spec content hash -> stats dict (as written by ``to_dict``).
    results: Dict[str, Dict] = field(default_factory=dict)
    #: spec content hash -> quarantine diagnostics.
    quarantined: Dict[str, Dict] = field(default_factory=dict)
    #: human-readable notes for lines that failed to parse or verify.
    corrupt: List[str] = field(default_factory=list)
    #: True when the header was missing or written by different code —
    #: every entry was discarded and the sweep starts from scratch.
    stale: bool = False


class SweepJournal:
    """Durable per-sweep WAL; see the module docstring for format."""

    def __init__(self, path: str):
        self.path = Path(path)
        self._sink = None
        #: False after a torn write: the next append must open a fresh
        #: line so the torn bytes cannot corrupt the following record.
        self._clean = True

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, fingerprint: Optional[str] = None) -> JournalState:
        """Parse the journal; corrupt lines are reported, never raised."""
        fingerprint = fingerprint or code_fingerprint()
        state = JournalState()
        try:
            raw = self.path.read_bytes()
        except OSError:
            state.stale = True  # nothing on disk: start fresh
            return state
        for lineno, line in enumerate(raw.split(b"\n"), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                state.corrupt.append(f"line {lineno}: unparseable (torn write?)")
                continue
            if not isinstance(record, dict):
                state.corrupt.append(f"line {lineno}: not a JSON object")
                continue
            kind = record.get("type")
            if kind == "header":
                if state.header is None:
                    state.header = record
                continue
            if record.get("crc") != _crc(record):
                state.corrupt.append(
                    f"line {lineno}: checksum mismatch ({kind or 'unknown'} record)"
                )
                continue
            if kind == "result" and isinstance(record.get("stats"), dict):
                state.results[record["spec"]] = record["stats"]
            elif kind == "quarantine" and isinstance(
                record.get("diagnostics"), dict
            ):
                state.quarantined[record["spec"]] = record["diagnostics"]
            else:
                state.corrupt.append(f"line {lineno}: unknown record type {kind!r}")
        if state.header is None or state.header.get("fingerprint") != fingerprint:
            # A journal from different code (or with no provenance at
            # all) cannot be trusted to replay bit-identically.
            state.results.clear()
            state.quarantined.clear()
            state.stale = True
        return state

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def start(
        self,
        spec_hashes: Sequence[str],
        fingerprint: Optional[str] = None,
        resume: bool = True,
    ) -> JournalState:
        """Open the journal for a sweep over *spec_hashes*.

        With ``resume`` (the default) a compatible existing file is
        kept and appended to, and its completed/quarantined entries
        are returned; otherwise (or when the file is stale) the
        journal is rewritten with a fresh header.
        """
        fingerprint = fingerprint or code_fingerprint()
        state = self.load(fingerprint) if resume else JournalState(stale=True)
        if state.stale:
            state = JournalState()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(self.path, "wb")
            self._clean = True
            header = {
                "type": "header",
                "version": JOURNAL_VERSION,
                "sweep_key": sweep_key(spec_hashes, fingerprint),
                "fingerprint": fingerprint,
                "n_specs": len(spec_hashes),
            }
            state.header = header
            self._append(header)
        else:
            self._sink = open(self.path, "ab")
            # Heal a torn tail: if the file does not end in a newline,
            # the next record must not glue itself onto the debris.
            self._clean = self.path.stat().st_size == 0 or self._ends_clean()
        return state

    def _ends_clean(self) -> bool:
        with open(self.path, "rb") as source:
            source.seek(-1, os.SEEK_END)
            return source.read(1) == b"\n"

    def _append(self, record: Dict) -> None:
        if self._sink is None:
            raise RuntimeError("journal not started; call start() first")
        line = _canonical(record).encode("utf-8") + b"\n"
        if not self._clean:
            line = b"\n" + line
        self._sink.write(line)
        self._sink.flush()
        os.fsync(self._sink.fileno())
        self._clean = True

    def record_result(self, spec_hash: str, stats: Dict) -> None:
        record = {"type": "result", "spec": spec_hash, "stats": stats}
        record["crc"] = _crc(record)
        self._append(record)

    def record_quarantine(self, spec_hash: str, diagnostics: Dict) -> None:
        record = {
            "type": "quarantine",
            "spec": spec_hash,
            "diagnostics": diagnostics,
        }
        record["crc"] = _crc(record)
        self._append(record)

    def record_torn_result(self, spec_hash: str, stats: Dict) -> None:
        """Fault injection (``partial-write``): write the first half of
        a result record and stop, exactly as a crash mid-``write(2)``
        would.  The loader must skip it; the next append heals it."""
        record = {"type": "result", "spec": spec_hash, "stats": stats}
        record["crc"] = _crc(record)
        blob = _canonical(record).encode("utf-8")
        torn = blob[: max(1, len(blob) // 2)]
        if self._sink is None:
            raise RuntimeError("journal not started; call start() first")
        if not self._clean:
            torn = b"\n" + torn
        self._sink.write(torn)
        self._sink.flush()
        os.fsync(self._sink.fileno())
        self._clean = False

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None
