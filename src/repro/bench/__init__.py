"""Benchmark harnesses regenerating the paper's figures and tables.

* :mod:`microbench <repro.bench.microbench>` — the §6.1 EigenBench-like
  CC comparison (Fig. 9).
* :mod:`stamp_matrix <repro.bench.stamp_matrix>` — the STAMP grid
  (Fig. 10), geomean headlines (§6.3), validation overheads (Fig. 11).
* :mod:`reporting <repro.bench.reporting>` — table rendering.

The runnable entry points live in ``benchmarks/`` (pytest-benchmark).
"""

from .microbench import (
    FIG9_ALGORITHMS,
    FIG9_N_VALUES,
    FIG9_THREADS,
    MicroPoint,
    figure9_sweep,
    reduction_vs,
    run_microbenchmark,
)
from .reporting import (
    DEGRADATION_HEADERS,
    degradation_row,
    format_table,
    print_table,
    series_by,
)
from .stamp_matrix import (
    FIG10_BACKENDS,
    FIG10_THREADS,
    Cell,
    StampMatrix,
    matrix_from_results,
    matrix_specs,
    run_matrix,
    validation_overhead_rows,
)

__all__ = [
    "Cell",
    "DEGRADATION_HEADERS",
    "FIG10_BACKENDS",
    "FIG10_THREADS",
    "FIG9_ALGORITHMS",
    "FIG9_N_VALUES",
    "FIG9_THREADS",
    "MicroPoint",
    "StampMatrix",
    "degradation_row",
    "figure9_sweep",
    "format_table",
    "matrix_from_results",
    "matrix_specs",
    "print_table",
    "reduction_vs",
    "run_matrix",
    "run_microbenchmark",
    "series_by",
    "validation_overhead_rows",
]
