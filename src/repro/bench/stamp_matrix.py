"""The Fig. 10 / Fig. 11 harness: the STAMP x backend x threads grid.

Since the exec-layer refactor the harness no longer runs anything
itself: it *names* the grid as :class:`~repro.exec.ExperimentSpec`
values and hands the batch to a :class:`~repro.exec.Runner` — serial
by default, process-pool when the caller wants the cores, cache-aware
when given a :class:`~repro.exec.ResultCache`.  Cell values are
identical whichever runner executes them (each spec is a
self-contained deterministic simulation; see docs/EXECUTION.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..exec import ExperimentSpec, Runner, SerialRunner
from ..exec.cache import ResultCache
from ..runtime import (
    RococoTMBackend,
    RunStats,
    TinySTMBackend,
    TsxBackend,
    geomean,
)
from ..stamp import ALL_WORKLOADS, StampWorkload

FIG10_THREADS = (1, 4, 8, 14, 28)
FIG10_BACKENDS: Tuple[Callable[[], object], ...] = (
    TinySTMBackend,
    TsxBackend,
    RococoTMBackend,
)


@dataclass(frozen=True)
class Cell:
    """One (workload, backend, threads) measurement."""

    workload: str
    backend: str
    n_threads: int
    speedup: float
    abort_rate: float
    fpga_abort_rate: float
    mean_validation_us: float
    commits: int
    aborts: int


@dataclass
class StampMatrix:
    cells: List[Cell] = field(default_factory=list)

    def __post_init__(self):
        self._reindex()

    def _reindex(self) -> None:
        self._index: Dict[Tuple[str, str, int], Cell] = {
            (c.workload, c.backend, c.n_threads): c for c in self.cells
        }

    def add(self, cell: Cell) -> None:
        self.cells.append(cell)
        self._index[(cell.workload, cell.backend, cell.n_threads)] = cell

    def get(self, workload: str, backend: str, n_threads: int) -> Cell:
        # ``geomean_ratio`` calls this in a double loop; the dict index
        # replaces the old O(cells) scan.  Rebuild lazily if cells were
        # appended behind our back (direct list mutation).
        if len(self._index) != len(self.cells):
            self._reindex()
        try:
            return self._index[(workload, backend, n_threads)]
        except KeyError:
            raise KeyError((workload, backend, n_threads)) from None

    def workloads(self) -> List[str]:
        return sorted({c.workload for c in self.cells})

    def geomean_speedup(self, backend: str, n_threads: int) -> float:
        return geomean(
            c.speedup
            for c in self.cells
            if c.backend == backend and c.n_threads == n_threads
        )

    def geomean_ratio(self, numerator: str, denominator: str, n_threads: int) -> float:
        """Geomean per-workload speedup ratio (the §6.3 headline)."""
        return geomean(
            self.get(w, numerator, n_threads).speedup
            / self.get(w, denominator, n_threads).speedup
            for w in self.workloads()
        )


def _backend_spec_name(factory: Callable[[], object]) -> str:
    """Resolve a backend factory to its exec-registry key."""
    name = getattr(factory, "name", None)
    if isinstance(name, str):
        return name
    return factory().name  # instantiate once to ask (non-class factory)


def _cell_from(stats: RunStats, baseline: RunStats, n_threads: int) -> Cell:
    return Cell(
        workload=stats.workload,
        backend=stats.backend,
        n_threads=n_threads,
        speedup=baseline.makespan_ns / stats.makespan_ns,
        abort_rate=stats.abort_rate,
        fpga_abort_rate=stats.fpga_abort_rate,
        mean_validation_us=stats.mean_validation_us,
        commits=stats.commits,
        aborts=stats.aborts,
    )


def matrix_specs(
    workloads: Sequence[Type[StampWorkload]] = ALL_WORKLOADS,
    backends: Sequence[Callable[[], object]] = FIG10_BACKENDS,
    threads: Sequence[int] = FIG10_THREADS,
    scale: float = 0.5,
    seed: int = 1,
    verify: bool = True,
    obs: bool = False,
    shards: int = 1,
) -> List[ExperimentSpec]:
    """The grid as specs: per workload, one sequential baseline cell
    followed by every (backend, threads) cell, in deterministic order.

    ``shards`` applies to ClusterTM cells only (every other backend is
    single-node by definition)."""
    specs: List[ExperimentSpec] = []
    backend_names = [_backend_spec_name(factory) for factory in backends]
    for workload_cls in workloads:
        specs.append(
            ExperimentSpec(
                workload_cls.name, "sequential", 1,
                scale=scale, seed=seed, verify=verify, obs=obs,
            )
        )
        for backend in backend_names:
            cell_shards = shards if backend == "ClusterTM" else 1
            for n_threads in threads:
                specs.append(
                    ExperimentSpec(
                        workload_cls.name, backend, n_threads,
                        scale=scale, seed=seed, verify=verify, obs=obs,
                        shards=cell_shards,
                    )
                )
    return specs


def matrix_from_results(
    specs: Sequence[ExperimentSpec], results: Sequence[RunStats]
) -> StampMatrix:
    """Assemble cells, pairing each cell with its workload's
    sequential baseline (specs as produced by :func:`matrix_specs`).

    A ``None`` entry in *results* is a quarantined cell (see
    :class:`~repro.exec.SupervisedRunner`): it is skipped, and when the
    missing cell is a workload's sequential *baseline*, every dependent
    speedup cell is skipped with it — a partial matrix, never a crash.
    """
    matrix = StampMatrix()
    baselines: Dict[str, RunStats] = {}
    for spec, stats in zip(specs, results):
        if stats is None:
            continue
        if spec.backend == "sequential":
            baselines[spec.workload] = stats
            continue
        baseline = baselines.get(spec.workload)
        if baseline is None:
            continue
        matrix.add(_cell_from(stats, baseline, spec.n_threads))
    return matrix


def run_matrix(
    workloads: Sequence[Type[StampWorkload]] = ALL_WORKLOADS,
    backends: Sequence[Callable[[], object]] = FIG10_BACKENDS,
    threads: Sequence[int] = FIG10_THREADS,
    scale: float = 0.5,
    seed: int = 1,
    verify: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    runner: Optional[Runner] = None,
    cache: Optional[ResultCache] = None,
) -> StampMatrix:
    """Run the full grid; speedups are vs the sequential baseline.

    ``runner`` defaults to :class:`~repro.exec.SerialRunner`; pass a
    :class:`~repro.exec.ProcessPoolRunner` to shard cells across host
    cores (results are bit-identical).  ``cache`` is only consulted
    when the caller did not bring a runner of their own.
    """
    if runner is None:
        runner = SerialRunner(cache=cache)
    specs = matrix_specs(
        workloads=workloads, backends=backends, threads=threads,
        scale=scale, seed=seed, verify=verify,
    )
    results = runner.run(specs, progress=progress)
    return matrix_from_results(specs, results)


def validation_overhead_rows(
    workloads: Sequence[Type[StampWorkload]],
    n_threads: int = 14,
    scale: float = 0.5,
    seed: int = 1,
    runner: Optional[Runner] = None,
) -> List[Dict]:
    """Fig. 11: amortized per-transaction validation time (us)."""
    if runner is None:
        runner = SerialRunner()
    specs = [
        ExperimentSpec(workload_cls.name, backend, n_threads, scale=scale, seed=seed)
        for workload_cls in workloads
        for backend in ("TinySTM", "ROCoCoTM")
    ]
    results = runner.run(specs)
    rows: List[Dict] = []
    for workload_cls, pair in zip(workloads, zip(results[::2], results[1::2])):
        row = {"workload": workload_cls.name}
        for stats in pair:
            row[stats.backend] = stats.mean_validation_us
        rows.append(row)
    return rows
