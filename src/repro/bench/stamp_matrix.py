"""The Fig. 10 / Fig. 11 harness: the STAMP x backend x threads grid."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..runtime import (
    RococoTMBackend,
    SequentialBackend,
    TinySTMBackend,
    TsxBackend,
    geomean,
)
from ..stamp import ALL_WORKLOADS, StampWorkload, run_stamp

FIG10_THREADS = (1, 4, 8, 14, 28)
FIG10_BACKENDS: Tuple[Callable[[], object], ...] = (
    TinySTMBackend,
    TsxBackend,
    RococoTMBackend,
)


@dataclass(frozen=True)
class Cell:
    """One (workload, backend, threads) measurement."""

    workload: str
    backend: str
    n_threads: int
    speedup: float
    abort_rate: float
    fpga_abort_rate: float
    mean_validation_us: float
    commits: int
    aborts: int


@dataclass
class StampMatrix:
    cells: List[Cell] = field(default_factory=list)

    def get(self, workload: str, backend: str, n_threads: int) -> Cell:
        for cell in self.cells:
            if (cell.workload, cell.backend, cell.n_threads) == (
                workload,
                backend,
                n_threads,
            ):
                return cell
        raise KeyError((workload, backend, n_threads))

    def workloads(self) -> List[str]:
        return sorted({c.workload for c in self.cells})

    def geomean_speedup(self, backend: str, n_threads: int) -> float:
        return geomean(
            c.speedup
            for c in self.cells
            if c.backend == backend and c.n_threads == n_threads
        )

    def geomean_ratio(self, numerator: str, denominator: str, n_threads: int) -> float:
        """Geomean per-workload speedup ratio (the §6.3 headline)."""
        return geomean(
            self.get(w, numerator, n_threads).speedup
            / self.get(w, denominator, n_threads).speedup
            for w in self.workloads()
        )


def run_matrix(
    workloads: Sequence[Type[StampWorkload]] = ALL_WORKLOADS,
    backends: Sequence[Callable[[], object]] = FIG10_BACKENDS,
    threads: Sequence[int] = FIG10_THREADS,
    scale: float = 0.5,
    seed: int = 1,
    verify: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> StampMatrix:
    """Run the full grid; speedups are vs the sequential baseline."""
    matrix = StampMatrix()
    for workload_cls in workloads:
        sequential = run_stamp(
            workload_cls, SequentialBackend(), 1, scale=scale, seed=seed, verify=verify
        )
        for backend_factory in backends:
            for n_threads in threads:
                stats = run_stamp(
                    workload_cls,
                    backend_factory(),
                    n_threads,
                    scale=scale,
                    seed=seed,
                    verify=verify,
                )
                cell = Cell(
                    workload=stats.workload,
                    backend=stats.backend,
                    n_threads=n_threads,
                    speedup=sequential.makespan_ns / stats.makespan_ns,
                    abort_rate=stats.abort_rate,
                    fpga_abort_rate=stats.fpga_abort_rate,
                    mean_validation_us=stats.mean_validation_us,
                    commits=stats.commits,
                    aborts=stats.aborts,
                )
                matrix.cells.append(cell)
                if progress is not None:
                    progress(
                        f"{cell.workload}/{cell.backend}@{n_threads}t "
                        f"speedup={cell.speedup:.2f} abort={cell.abort_rate:.0%}"
                    )
    return matrix


def validation_overhead_rows(
    workloads: Sequence[Type[StampWorkload]],
    n_threads: int = 14,
    scale: float = 0.5,
    seed: int = 1,
) -> List[Dict]:
    """Fig. 11: amortized per-transaction validation time (us)."""
    rows = []
    for workload_cls in workloads:
        row = {"workload": workload_cls.name}
        for backend_factory in (TinySTMBackend, RococoTMBackend):
            stats = run_stamp(
                workload_cls, backend_factory(), n_threads, scale=scale, seed=seed
            )
            row[stats.backend] = stats.mean_validation_us
        rows.append(row)
    return rows
