"""Plain-text table rendering for the benchmark harness.

Every ``bench_*`` target prints the rows/series the paper's figure or
table reports, via these helpers, so ``pytest benchmarks/`` output is
directly comparable to the publication.
"""

from __future__ import annotations

from typing import Dict, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """A fixed-width ASCII table."""
    text_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if 0 < abs(value) < 0.005:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def print_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))


#: column headers matching :func:`degradation_row` (the chaos CLI and
#: ``bench_chaos_degradation.py`` print the same table).
DEGRADATION_HEADERS = [
    "commits",
    "aborts",
    "faults",
    "link_rtx",
    "timeouts",
    "resubmits",
    "failovers",
    "failbacks",
    "sw_share",
    "makespan_ms",
]


def degradation_row(stats) -> list:
    """The fault/degradation counters of one run as table cells."""
    return [
        stats.commits,
        stats.aborts,
        stats.total_faults_injected,
        stats.link_retries,
        stats.validation_timeouts,
        stats.validation_resubmits,
        stats.failovers,
        stats.failbacks,
        f"{stats.degraded_validation_share:.1%}",
        stats.makespan_ns / 1e6,
    ]


def series_by(points, key_fields: Sequence[str], value_field: str) -> Dict:
    """Group a list of dataclass points into {key_tuple: [values]}."""
    out: Dict = {}
    for p in points:
        key = tuple(getattr(p, f) for f in key_fields)
        out.setdefault(key, []).append(getattr(p, value_field))
    return out
