"""The §6.1 micro-benchmark harness (Fig. 9).

Fifty random traces per collision rate, N in {4, 8, ..., 32} accesses
over 1024 locations at 50/50 read/write, replayed under T-way
concurrency by each CC algorithm; the metric is the aborted fraction
of all transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

from ..cc import (
    DEFAULT_LOCATIONS,
    RococoCC,
    ToccCommitTime,
    TraceCC,
    TwoPhaseLocking,
    collision_probability,
    generate_trace,
)

FIG9_ALGORITHMS: Tuple[Type[TraceCC], ...] = (TwoPhaseLocking, ToccCommitTime, RococoCC)
FIG9_N_VALUES = (4, 8, 12, 16, 20, 24, 28, 32)
FIG9_THREADS = (4, 16)


@dataclass(frozen=True)
class MicroPoint:
    """One (algorithm, T, N) cell of Fig. 9."""

    algorithm: str
    concurrency: int
    ops_per_txn: int
    collision_rate: float
    abort_rate: float
    commits: int
    aborts: int


def run_microbenchmark(
    concurrency: int,
    ops_per_txn: int,
    algorithms: Sequence[Type[TraceCC]] = FIG9_ALGORITHMS,
    n_txns: int = 160,
    seeds: int = 50,
    locations: int = DEFAULT_LOCATIONS,
) -> List[MicroPoint]:
    """All algorithms on the same ``seeds`` traces for one (T, N)."""
    totals: Dict[str, List[int]] = {algo.name: [0, 0] for algo in algorithms}
    for seed in range(seeds):
        trace = generate_trace(
            n_txns=n_txns,
            ops_per_txn=ops_per_txn,
            locations=locations,
            seed=seed * 1000 + ops_per_txn,
        )
        for algo in algorithms:
            result = algo(concurrency).run(trace)
            totals[algo.name][0] += result.commits
            totals[algo.name][1] += result.aborts
    collision = collision_probability(ops_per_txn, locations)
    points = []
    for algo in algorithms:
        commits, aborts = totals[algo.name]
        points.append(
            MicroPoint(
                algorithm=algo.name,
                concurrency=concurrency,
                ops_per_txn=ops_per_txn,
                collision_rate=collision,
                abort_rate=aborts / (commits + aborts),
                commits=commits,
                aborts=aborts,
            )
        )
    return points


def figure9_sweep(
    threads: Sequence[int] = FIG9_THREADS,
    n_values: Sequence[int] = FIG9_N_VALUES,
    seeds: int = 50,
    n_txns: int = 160,
) -> List[MicroPoint]:
    """The full Fig. 9 grid."""
    points = []
    for concurrency in threads:
        for n in n_values:
            points.extend(
                run_microbenchmark(concurrency, n, seeds=seeds, n_txns=n_txns)
            )
    return points


def reduction_vs(points: Sequence[MicroPoint], baseline: str, candidate: str) -> Dict:
    """Per-(T, N) relative abort reduction of candidate vs baseline.

    The paper quotes "up to 56.2% and 20.2% lower aborts" vs 2PL and
    TOCC; this computes the same relative reductions.
    """
    by_cell: Dict[Tuple[int, int], Dict[str, float]] = {}
    for p in points:
        by_cell.setdefault((p.concurrency, p.ops_per_txn), {})[p.algorithm] = p.abort_rate
    out = {}
    for cell, rates in by_cell.items():
        if baseline in rates and candidate in rates and rates[baseline] > 0:
            out[cell] = (rates[baseline] - rates[candidate]) / rates[baseline]
    return out
