"""Command-line interface: regenerate paper figures from the shell.

Examples::

    python -m repro list
    python -m repro fig7
    python -m repro fig9 --threads 16 --seeds 10
    python -m repro fig10 --scale 0.35 --workloads kmeans vacation
    python -m repro fig10 --jobs 0 --cache .bench-cache --stamp-json BENCH_stamp.json
    python -m repro fig11
    python -m repro resources --window 128 --bits 1024
    python -m repro stamp vacation ROCoCoTM --threads 14
    python -m repro stamp kmeans ROCoCoTM --faults mixed
    python -m repro chaos kmeans --schedule all --sanitize
    python -m repro sanitize vacation ROCoCoTM --faults stall

    python -m repro trace vacation ROCoCoTM --out trace.json
    python -m repro metrics kmeans ROCoCoTM --faults mixed --json

Each subcommand prints the rows/series of the corresponding figure or
table; see ``benchmarks/`` for the asserted pytest-benchmark variants.

Exit codes: 0 success, 1 failure (violations found, run error), 2
usage error, 3 completed-with-quarantined-cells (supervised sweeps
only: every healthy cell ran, but one or more poison cells were
quarantined after exhausting their retries — diagnostics on stderr).
Parse errors exit through argparse; every error *after* parsing is
converted to a return code by :func:`main`, never an uncaught
traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench import (
    DEGRADATION_HEADERS,
    FIG10_BACKENDS,
    FIG10_THREADS,
    degradation_row,
    figure9_sweep,
    matrix_from_results,
    matrix_specs,
    print_table,
    validation_overhead_rows,
)
from .exec import (
    BACKEND_REGISTRY,
    WORKLOAD_REGISTRY,
    ExperimentSpec,
    ResultCache,
    SerialRunner,
    default_runner,
    write_bench_stamp,
)
from .faults import BUILTIN_SCHEDULES
from .stamp import ALL_WORKLOADS, CONTENTION_VARIANTS, EXTRA_WORKLOADS

#: the CLI's vocabularies are the exec layer's registries — one source
#: of truth for what a workload/backend name means everywhere.
BACKENDS = BACKEND_REGISTRY
WORKLOADS = WORKLOAD_REGISTRY

#: supervised sweep finished, but some cells were quarantined.
EXIT_QUARANTINED = 3

#: tolerated spellings for registry keys (external tooling says
#: "stamp-vacation-low" where the registry says "vacation").
WORKLOAD_ALIASES = {
    "vacation-low": "vacation",
    "kmeans-high": "kmeans",
}


def _resolve_workload(name: str) -> str:
    """Map a user-facing workload spelling onto its registry key."""
    key = name.lower()
    if key.startswith("stamp-"):
        key = key[len("stamp-"):]
    key = WORKLOAD_ALIASES.get(key, key)
    if key not in WORKLOADS:
        raise SystemExit(
            f"unknown workload {name!r}; choose from: "
            + ", ".join(sorted(WORKLOADS))
        )
    return key


def _resolve_backend(name: str) -> str:
    """Case-insensitive backend lookup (``rococotm`` -> ``ROCoCoTM``)."""
    by_lower = {key.lower(): key for key in BACKENDS}
    key = by_lower.get(name.lower())
    if key is None:
        raise SystemExit(
            f"unknown backend {name!r}; choose from: "
            + ", ".join(sorted(BACKENDS))
        )
    return key


def _make_backend(
    name: str,
    faults: Optional[str] = None,
    fault_seed: int = 0,
    shards: int = 1,
):
    """A backend instance, optionally sharded and/or under faults."""
    if shards > 1 and name != "ClusterTM":
        raise SystemExit(
            f"--shards {shards} requires the ClusterTM backend "
            f"(got {name})"
        )
    if name == "ClusterTM":
        from .cluster import ClusterTMBackend

        return ClusterTMBackend(
            shards=shards, faults=faults or None, fault_seed=fault_seed
        )
    if faults:
        if name != "ROCoCoTM":
            raise SystemExit(
                "--faults injects into the FPGA validation path and "
                "requires the ROCoCoTM or ClusterTM backend"
            )
        from .faults import build_chaos_backend

        return build_chaos_backend(faults, fault_seed)
    return BACKENDS[name]()


def _env_default(name: str, cast):
    """An ``REPRO_BENCH_*`` env value as a flag default, or None."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return cast(raw)
    except ValueError:
        raise SystemExit(f"bad {name}={raw!r}: expected {cast.__name__}") from None


def add_supervision_args(sub_parser) -> None:
    """The supervised-execution flags shared by stamp/chaos/fig10.

    Defaults honor the ``REPRO_BENCH_*`` env conventions the
    benchmarks already use, so CI can steer supervision without
    editing command lines.
    """
    group = sub_parser.add_argument_group(
        "supervision",
        "any of these flags routes the sweep through SupervisedRunner "
        "(deadlines, retries, quarantine, crash-resumable journal); "
        "exit 3 = completed with quarantined cells",
    )
    group.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        default=_env_default("REPRO_BENCH_TIMEOUT", float),
        help="per-cell wall-clock deadline (env: REPRO_BENCH_TIMEOUT)",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        default=_env_default("REPRO_BENCH_RETRIES", int),
        help="retries per failing cell before quarantine "
        "(default 2; env: REPRO_BENCH_RETRIES)",
    )
    group.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=os.environ.get("REPRO_BENCH_RESUME") or None,
        help="journal sweep progress to this fsynced JSONL WAL and, if "
        "it already holds compatible entries, serve them instead of "
        "re-executing (env: REPRO_BENCH_RESUME)",
    )
    group.add_argument(
        "--worker-faults",
        metavar="PLAN",
        default=os.environ.get("REPRO_BENCH_WORKER_FAULTS") or None,
        help="inject deterministic host-side worker faults, "
        "kind@cell[:attempt],... with kinds crash|hang|garbage|"
        "partial-write — chaos-tests the supervisor itself "
        "(env: REPRO_BENCH_WORKER_FAULTS)",
    )


def _supervised_runner(args, cache):
    """A :class:`SupervisedRunner` when any supervision flag is set,
    else None (callers keep their plain serial/pool runner)."""
    if (
        args.timeout is None
        and args.max_retries is None
        and not args.resume
        and not args.worker_faults
    ):
        return None
    from .exec import SupervisedRunner, SupervisorPolicy

    policy_kwargs = {}
    if args.timeout is not None:
        policy_kwargs["timeout_s"] = args.timeout
    if args.max_retries is not None:
        policy_kwargs["max_retries"] = args.max_retries
    worker_faults = None
    if args.worker_faults:
        from .faults import WorkerFaultPlan

        worker_faults = WorkerFaultPlan.parse(
            args.worker_faults, seed=getattr(args, "fault_seed", 0) or 0
        )
    return SupervisedRunner(
        max_workers=getattr(args, "jobs", None),
        cache=cache,
        policy=SupervisorPolicy(**policy_kwargs),
        journal=args.resume,
        resume=bool(args.resume),
        worker_faults=worker_faults,
    )


def _report_supervision(runner) -> int:
    """Summarize a supervised sweep on stderr; the exit code is 3 when
    cells were quarantined, else 0."""
    print(runner.summary(), file=sys.stderr)
    if not runner.quarantined:
        return 0
    for index in sorted(runner.quarantined):
        diag = runner.quarantined[index]
        spec = diag.get("spec", {})
        label = f"{spec.get('workload')}/{spec.get('backend')}@{spec.get('n_threads')}t"
        failures = diag.get("failures", [])
        kinds = ",".join(sorted({f.get("kind", "?") for f in failures}))
        print(
            f"quarantined cell {index} ({label}): "
            f"{diag.get('attempts', len(failures))} attempts, {kinds}",
            file=sys.stderr,
        )
    return EXIT_QUARANTINED


def _cmd_list(_args) -> int:
    print_table(
        ["workload", "transaction profile"],
        [[w.name, w.profile] for w in ALL_WORKLOADS + CONTENTION_VARIANTS + EXTRA_WORKLOADS],
        title="STAMP applications (+ contention variants)",
    )
    print_table(
        ["backend", "description"],
        [
            ["sequential", "uninstrumented single-thread baseline"],
            ["global-lock", "one mutex around every atomic block"],
            ["TinySTM", "LSA STM, commit-time locking, write-back"],
            ["TinySTM-ETL", "LSA STM, encounter-time locking variant"],
            ["TSX", "best-effort HTM, requester-wins + lock fallback"],
            ["ROCoCoTM", "the paper's hybrid CPU+FPGA system"],
            ["ClusterTM", "sharded scale-out ROCoCoTM (--shards N, 2PC)"],
            ["SI-MVCC", "multi-version snapshot isolation (anomalies!)"],
        ],
        title="TM systems",
    )
    return 0


def _cmd_fig7(_args) -> int:
    from .signatures import intersection_false_positive, query_false_positive

    rows = []
    for bits, k in ((256, 4), (512, 4), (512, 8), (1024, 8)):
        for n in (1, 2, 4, 8, 16, 32):
            rows.append(
                [
                    f"m={bits},k={k}",
                    n,
                    query_false_positive(n, bits, k),
                    intersection_false_positive(n, n, bits, k),
                ]
            )
    print_table(
        ["config", "n", "P(query FP)", "P(intersect FP)"],
        rows,
        title="Figure 7: bloom-filter false positivity (analytic model)",
    )
    return 0


def _cmd_fig9(args) -> int:
    points = figure9_sweep(
        threads=(args.threads,), seeds=args.seeds, n_txns=args.txns
    )
    by_n = {}
    for p in points:
        by_n.setdefault(p.ops_per_txn, {"collision": p.collision_rate})[
            p.algorithm
        ] = p.abort_rate
    print_table(
        ["N", "collision", "2PL", "TOCC", "ROCoCo"],
        [
            [n, c["collision"], c["2PL"], c["TOCC"], c["ROCoCo"]]
            for n, c in sorted(by_n.items())
        ],
        title=f"Figure 9 (T={args.threads}): abort rate vs collision rate",
    )
    return 0


def _cmd_fig10(args) -> int:
    # Wall-clock here times the *sweep harness* (operator-facing ETA),
    # never the simulated experiments, which run on virtual time.
    import time  # tm: ignore[TM101]

    workloads = [WORKLOADS[name] for name in args.workloads] if args.workloads else ALL_WORKLOADS
    cache = ResultCache(args.cache) if args.cache else None
    supervised = _supervised_runner(args, cache)
    runner = supervised if supervised is not None else default_runner(args.jobs, cache=cache)
    shards = getattr(args, "shards", 1)
    fig_backends = ["TinySTM", "TSX", "ROCoCoTM"]
    backend_factories = list(FIG10_BACKENDS)
    if shards > 1:
        from .cluster import ClusterTMBackend

        fig_backends.append("ClusterTM")
        backend_factories.append(ClusterTMBackend)
    specs = matrix_specs(
        workloads=workloads, backends=tuple(backend_factories),
        threads=tuple(args.threads),
        scale=args.scale, seed=args.seed, obs=args.obs, shards=shards,
    )
    started = time.perf_counter()
    results = runner.run(
        specs,
        progress=(lambda msg: print("  " + msg, file=sys.stderr)) if args.verbose else None,
    )
    wall_clock_s = time.perf_counter() - started
    matrix = matrix_from_results(specs, results)
    if args.stamp_json:
        write_bench_stamp(
            args.stamp_json, matrix, specs, wall_clock_s, runner, cache,
            results=results if args.obs else None,
        )
        print(f"wrote {args.stamp_json}", file=sys.stderr)
    if cache is not None:
        print(
            f"cache: {cache.hits}/{cache.lookups} hits "
            f"({cache.hit_rate:.0%}) in {cache.root}",
            file=sys.stderr,
        )
    def cell_row(name, backend, nt):
        # A quarantined cell (supervised sweeps) leaves a hole in the
        # matrix; render it as "-" rather than crashing the table.
        try:
            cell = matrix.get(name, backend, nt)
        except KeyError:
            return [backend, nt, "-", "-"]
        return [backend, nt, cell.speedup, cell.abort_rate]

    def ratio(numerator, denominator, nt):
        try:
            return matrix.geomean_ratio(numerator, denominator, nt)
        except (KeyError, ZeroDivisionError):
            return "-"

    for name in matrix.workloads():
        rows = [
            cell_row(name, backend, nt)
            for backend in fig_backends
            for nt in args.threads
        ]
        print_table(
            ["system", "threads", "speedup", "abort rate"],
            rows,
            title=f"Figure 10 - {name}",
        )
    geo_rows = [
        [
            nt,
            ratio("ROCoCoTM", "TinySTM", nt),
            ratio("ROCoCoTM", "TSX", nt),
        ]
        for nt in args.threads
    ]
    print_table(
        ["threads", "ROCoCoTM/TinySTM", "ROCoCoTM/TSX"],
        geo_rows,
        title="Geomean speedup ratios (paper @28t: 1.55 / 8.05)",
    )
    if shards > 1:
        print_table(
            ["threads", "ClusterTM/ROCoCoTM"],
            [[nt, ratio("ClusterTM", "ROCoCoTM", nt)] for nt in args.threads],
            title=f"Cluster scale-out ratio ({shards} shards)",
        )
    if supervised is not None:
        return _report_supervision(supervised)
    return 0


def _cmd_fig11(args) -> int:
    workloads = [WORKLOADS[name] for name in args.workloads] if args.workloads else ALL_WORKLOADS
    rows = validation_overhead_rows(workloads, n_threads=args.threads, scale=args.scale)
    print_table(
        ["workload", "TinySTM us/txn", "ROCoCoTM us/txn"],
        [[r["workload"], r["TinySTM"], r["ROCoCoTM"]] for r in rows],
        title=f"Figure 11: per-transaction validation overhead ({args.threads} threads)",
    )
    return 0


def _cmd_resources(args) -> int:
    from .hw import estimate

    est = estimate(window=args.window, signature_bits=args.bits, partitions=args.partitions)
    print_table(
        ["resource", "used", "utilization"],
        [
            ["registers", est.registers, f"{est.register_pct:.1f}%"],
            ["ALMs", est.alms, f"{est.alm_pct:.2f}%"],
            ["DSPs", est.dsps, f"{est.dsp_pct:.1f}%"],
            ["BRAM bits", est.bram_bits, f"{est.bram_pct:.1f}%"],
            ["Fmax", f"{est.fmax_mhz:.0f} MHz", "fits" if est.fits else "DOES NOT FIT"],
        ],
        title=f"FPGA resources (W={args.window}, m={args.bits}, k={args.partitions})",
    )
    return 0


def _cmd_stamp(args) -> int:
    if args.faults and args.backend not in ("ROCoCoTM", "ClusterTM"):
        raise SystemExit(
            "--faults injects into the FPGA validation path and "
            "requires the ROCoCoTM or ClusterTM backend"
        )
    shards = getattr(args, "shards", 1) or 1
    if shards > 1 and args.backend != "ClusterTM":
        raise SystemExit(
            f"--shards {shards} requires the ClusterTM backend "
            f"(got {args.backend})"
        )
    spec = ExperimentSpec(
        args.workload,
        args.backend,
        1 if args.backend == "sequential" else args.threads,
        scale=args.scale,
        seed=args.seed,
        faults=args.faults,
        fault_seed=args.fault_seed,
        shards=shards,
    )
    cache = ResultCache(args.cache) if args.cache else None
    runner = _supervised_runner(args, cache)
    exit_code = 0
    if runner is None:
        [stats] = SerialRunner(cache=cache).run([spec])
    else:
        [stats] = runner.run([spec])
        exit_code = _report_supervision(runner)
        if stats is None:
            return exit_code
    print(stats.summary())
    if stats.validations:
        print(f"mean validation: {stats.mean_validation_us:.3f} us/txn")
    return exit_code


def _cmd_chaos(args) -> int:
    """Run the fault matrix on one workload; optionally sanitized."""
    from .faults import BUILTIN_SCHEDULES, chaos_sanitize

    workload_cls = WORKLOADS[args.workload]
    schedules = (
        list(BUILTIN_SCHEDULES) if "all" in args.schedule else args.schedule
    )
    shards = getattr(args, "shards", 1) or 1
    if shards > 1 and args.sanitize:
        raise SystemExit(
            "--sanitize replays through the single-node chaos harness; "
            "drop --shards or --sanitize"
        )
    rows = []
    violations = 0
    supervised = None
    if args.sanitize:
        for sched in schedules:
            [(_, report, backend)] = chaos_sanitize(
                workload_cls,
                [sched],
                n_threads=args.threads,
                scale=args.scale,
                seed=args.seed,
                fault_seed=args.fault_seed,
            )
            if not report.ok:
                violations += 1
                print(f"--- {sched}: SANITIZER VIOLATIONS ---", file=sys.stderr)
                print(report.summary(), file=sys.stderr)
            rows.append(
                [sched]
                + degradation_row(backend.stats)
                + ["ok" if report.ok else "FAIL"]
            )
    else:
        specs = [
            ExperimentSpec(
                args.workload,
                "ClusterTM" if shards > 1 else "ROCoCoTM",
                args.threads,
                scale=args.scale,
                seed=args.seed,
                faults=sched,
                fault_seed=args.fault_seed,
                irrevocable_after=args.irrevocable_after,
                shards=shards,
            )
            for sched in schedules
        ]
        cache = ResultCache(args.cache) if args.cache else None
        supervised = _supervised_runner(args, cache)
        runner = supervised if supervised is not None else default_runner(
            args.jobs, cache=cache
        )
        results = runner.run(specs)
        for sched, stats in zip(schedules, results):
            if stats is None:  # quarantined under supervision
                rows.append(
                    [sched] + ["-"] * len(DEGRADATION_HEADERS) + ["QUARANTINED"]
                )
            else:
                rows.append([sched] + degradation_row(stats) + ["-"])
    print_table(
        ["schedule"] + DEGRADATION_HEADERS + ["oracles"],
        rows,
        title=(
            f"Chaos matrix: {args.workload} @ {args.threads} threads "
            f"(scale {args.scale}, seed {args.seed}, fault seed {args.fault_seed})"
        ),
    )
    if violations:
        return 1
    if supervised is not None:
        return _report_supervision(supervised)
    return 0


def _cmd_sanitize(args) -> int:
    from .sanitizer import diff_backends
    from .sanitizer.dynamic import run_sanitized

    if args.self_check:
        from .sanitizer.selfcheck import run_self_check

        return 0 if run_self_check() else 1

    if not args.workload or not args.backend:
        print("sanitize: workload and backend are required (or --self-check)", file=sys.stderr)
        return 2

    workload_cls = WORKLOADS[args.workload]
    n_threads = 1 if args.backend == "sequential" else args.threads
    if args.diff:
        report = diff_backends(
            workload_cls,
            _make_backend(args.backend, args.faults, args.fault_seed),
            BACKENDS[args.diff](),
            n_threads,
            scale=args.scale,
            seed=args.seed,
            strict=args.strict_diff,
        )
    else:
        report, sanitized, _ = run_sanitized(
            workload_cls,
            _make_backend(args.backend, args.faults, args.fault_seed),
            n_threads,
            scale=args.scale,
            seed=args.seed,
        )
        if args.dump_log:
            with open(args.dump_log, "w") as sink:
                sink.write(sanitized.log.dump_jsonl() + "\n")
            print(f"event log ({len(sanitized.log)} events) -> {args.dump_log}")
    print(report.summary())
    return 0 if report.ok else 1


def _run_observed(args, trace: bool):
    """Shared trace/metrics driving: resolve names, run one observed cell."""
    from .obs import observe_stamp

    workload = _resolve_workload(args.workload)
    backend_name = _resolve_backend(args.backend)
    if args.faults and backend_name not in ("ROCoCoTM", "ClusterTM"):
        raise SystemExit(
            "--faults injects into the FPGA validation path and "
            "requires the ROCoCoTM or ClusterTM backend"
        )
    backend = _make_backend(
        backend_name, args.faults, args.fault_seed,
        shards=getattr(args, "shards", 1) or 1,
    )
    n_threads = 1 if backend_name == "sequential" else args.threads
    stats, tracer, registry = observe_stamp(
        WORKLOADS[workload],
        backend,
        n_threads,
        scale=args.scale,
        seed=args.seed,
        verify=not args.no_verify,
        trace=trace,
        detail=trace and not args.no_detail,
    )
    return workload, backend_name, n_threads, stats, tracer, registry


def _cmd_trace(args) -> int:
    from .obs import write_chrome_trace

    workload, backend_name, n_threads, stats, tracer, _ = _run_observed(
        args, trace=True
    )
    payload = write_chrome_trace(
        args.out,
        tracer,
        workload=workload,
        backend=backend_name,
        n_threads=n_threads,
        scale=args.scale,
        seed=args.seed,
        faults=args.faults,
    )
    print(stats.summary())
    print(
        f"trace: {len(tracer.spans)} spans, {len(tracer.markers)} markers, "
        f"{len(payload['traceEvents'])} trace events -> {args.out}"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_metrics(args) -> int:
    import json

    workload, backend_name, n_threads, stats, _, registry = _run_observed(
        args, trace=False
    )
    snapshot = registry.snapshot()
    if args.out:
        with open(args.out, "w") as sink:
            json.dump(snapshot, sink, indent=1, sort_keys=True)
            sink.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(snapshot, indent=1, sort_keys=True))
        return 0
    title = f"{workload}/{backend_name}@{n_threads}t (scale {args.scale}, seed {args.seed})"
    print_table(
        ["counter", "value"],
        [[name, value] for name, value in snapshot["counters"].items()],
        title=f"Counters: {title}",
    )
    if snapshot["gauges"]:
        print_table(
            ["gauge", "value"],
            [[name, value] for name, value in snapshot["gauges"].items()],
            title="Gauges",
        )
    hist_rows = []
    for name, hist in snapshot["histograms"].items():
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        hist_rows.append([name, hist["count"], mean, hist["min"], hist["max"]])
    if hist_rows:
        print_table(
            ["histogram", "count", "mean", "min", "max"],
            hist_rows,
            title="Histograms",
        )
    return 0


def _cmd_analyze(args) -> int:
    import json as _json

    from .analysis import (
        analyze_paths_cached,
        apply_baseline,
        baseline_from,
        load_baseline,
        parse_rules,
    )
    from .analysis.findings import DEFAULT_BASELINE

    try:
        rules = parse_rules(args.rules)
    except ValueError as bad:
        print(f"analyze: {bad}", file=sys.stderr)
        return 2
    try:
        findings, files, cache_hit = analyze_paths_cached(
            args.paths, rules, cache_path=args.cache
        )
    except FileNotFoundError as missing:
        print(missing, file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.update_baseline:
        baseline_from(findings).dump(baseline_path)
        print(
            f"analyze: baselined {len(findings)} finding(s) "
            f"into {baseline_path}"
        )
        return 0

    baseline = None
    if not args.no_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            print(
                f"analyze: baseline {args.baseline!r} not found",
                file=sys.stderr,
            )
            return 2
    new, baselined = apply_baseline(findings, baseline)

    if args.format == "json":
        print(
            _json.dumps(
                {
                    "version": 1,
                    "files": files,
                    "cache_hit": cache_hit,
                    "findings": [f.to_dict() for f in new],
                    "baselined": [f.to_dict() for f in baselined],
                },
                indent=1,
                sort_keys=True,
            )
        )
    else:
        for finding in new:
            print(finding)
        summary = (
            f"{len(new)} finding(s) in {files} file(s) "
            f"({', '.join(args.paths)})"
        )
        if baselined:
            summary += f"; {len(baselined)} baselined"
        print(summary)
    return 1 if new else 0


def _cmd_lint(args) -> int:
    # Deprecated alias: the lint rules migrated onto the analyzer
    # framework; this keeps byte-compatible output and exit codes.
    from .analysis import analyze_paths, parse_rules

    print(
        "repro lint is deprecated; use "
        "`repro analyze --rules TM001-TM004` (see docs/ANALYSIS.md)",
        file=sys.stderr,
    )
    try:
        errors, _ = analyze_paths(args.paths, parse_rules("TM001-TM004"))
    except FileNotFoundError as missing:
        print(missing, file=sys.stderr)
        return 2
    for error in errors:
        print(error)
    print(f"{len(errors)} lint error(s) in {', '.join(args.paths)}")
    return 1 if errors else 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="ROCoCoTM reproduction harness"
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available workloads and backends").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("fig7", help="bloom-filter false positivity").set_defaults(
        func=_cmd_fig7
    )

    p9 = sub.add_parser("fig9", help="CC abort rates vs collision rate")
    p9.add_argument("--threads", type=int, default=16, choices=(4, 16))
    p9.add_argument("--seeds", type=int, default=20)
    p9.add_argument("--txns", type=int, default=120)
    p9.set_defaults(func=_cmd_fig9)

    p10 = sub.add_parser("fig10", help="STAMP speedups and abort rates")
    p10.add_argument("--scale", type=float, default=0.5)
    p10.add_argument("--seed", type=int, default=1)
    p10.add_argument("--threads", type=int, nargs="+", default=list(FIG10_THREADS))
    p10.add_argument("--workloads", nargs="+", choices=sorted(WORKLOADS))
    p10.add_argument("--verbose", action="store_true")
    p10.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard cells across N processes (0 = one per core); "
        "results are bit-identical to serial",
    )
    p10.add_argument(
        "--cache",
        metavar="DIR",
        help="content-addressed result cache: re-runs only execute changed cells",
    )
    p10.add_argument(
        "--stamp-json",
        metavar="PATH",
        help="write machine-readable sweep results (specs, cells, "
        "wall-clock, cache hit rate)",
    )
    p10.add_argument(
        "--obs",
        action="store_true",
        help="attach the metrics registry to every cell; snapshots land "
        "in the --stamp-json record (merged across shards)",
    )
    p10.add_argument(
        "--shards",
        type=int,
        default=_env_default("REPRO_SHARDS", int) or 1,
        help="add a ClusterTM column with this many shards "
        "(env REPRO_SHARDS; see docs/CLUSTER.md)",
    )
    add_supervision_args(p10)
    p10.set_defaults(func=_cmd_fig10)

    p11 = sub.add_parser("fig11", help="per-transaction validation overhead")
    p11.add_argument("--threads", type=int, default=14)
    p11.add_argument("--scale", type=float, default=0.5)
    p11.add_argument("--workloads", nargs="+", choices=sorted(WORKLOADS))
    p11.set_defaults(func=_cmd_fig11)

    pr = sub.add_parser("resources", help="FPGA resource/Fmax model")
    pr.add_argument("--window", type=int, default=64)
    pr.add_argument("--bits", type=int, default=512)
    pr.add_argument("--partitions", type=int, default=4)
    pr.set_defaults(func=_cmd_resources)

    ps = sub.add_parser("stamp", help="run one workload on one backend")
    ps.add_argument("workload", choices=sorted(WORKLOADS))
    ps.add_argument("backend", choices=sorted(BACKENDS))
    ps.add_argument("--threads", type=int, default=8)
    ps.add_argument("--scale", type=float, default=0.5)
    ps.add_argument("--seed", type=int, default=1)
    ps.add_argument(
        "--faults",
        choices=BUILTIN_SCHEDULES,
        help="inject this fault schedule into the validation path "
        "(ROCoCoTM or ClusterTM only)",
    )
    ps.add_argument("--fault-seed", type=int, default=0)
    ps.add_argument(
        "--shards",
        type=int,
        default=_env_default("REPRO_SHARDS", int) or 1,
        help="shard count for the ClusterTM backend (env REPRO_SHARDS)",
    )
    ps.add_argument(
        "--cache", metavar="DIR", help="content-addressed result cache"
    )
    add_supervision_args(ps)
    ps.set_defaults(func=_cmd_stamp)

    pc = sub.add_parser(
        "chaos",
        help="fault matrix: run every schedule, report degradation counters",
    )
    pc.add_argument("workload", choices=sorted(WORKLOADS))
    pc.add_argument(
        "--schedule",
        nargs="+",
        default=["all"],
        choices=sorted(BUILTIN_SCHEDULES) + ["all"],
    )
    pc.add_argument("--threads", type=int, default=4)
    pc.add_argument("--scale", type=float, default=0.25)
    pc.add_argument("--seed", type=int, default=1)
    pc.add_argument("--fault-seed", type=int, default=0)
    pc.add_argument(
        "--sanitize",
        action="store_true",
        help="replay each schedule through the sanitizer oracles (exit 1 on violations)",
    )
    pc.add_argument(
        "--irrevocable-after",
        type=int,
        default=None,
        help="enable the irrevocable escape hatch after N consecutive aborts",
    )
    pc.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard schedules across N processes (non-sanitized runs only)",
    )
    pc.add_argument(
        "--cache", metavar="DIR", help="content-addressed result cache"
    )
    pc.add_argument(
        "--shards",
        type=int,
        default=_env_default("REPRO_SHARDS", int) or 1,
        help="run the matrix on a ClusterTM cluster with this many "
        "shards instead of single-node ROCoCoTM (env REPRO_SHARDS)",
    )
    add_supervision_args(pc)
    pc.set_defaults(func=_cmd_chaos)

    pz = sub.add_parser(
        "sanitize",
        help="run a workload under the TM sanitizer (exit 1 on violations)",
    )
    pz.add_argument("workload", nargs="?", choices=sorted(WORKLOADS))
    pz.add_argument("backend", nargs="?", choices=sorted(BACKENDS))
    pz.add_argument("--threads", type=int, default=4)
    pz.add_argument("--scale", type=float, default=0.25)
    pz.add_argument("--seed", type=int, default=1)
    pz.add_argument(
        "--diff",
        metavar="BACKEND2",
        choices=sorted(BACKENDS),
        help="differential mode: same workload+seed under a second backend",
    )
    pz.add_argument(
        "--strict-diff",
        action="store_true",
        help="treat committed-state divergence in --diff as a violation",
    )
    pz.add_argument(
        "--self-check",
        action="store_true",
        help="run the sanitizer's known-bad fixtures instead of a workload",
    )
    pz.add_argument(
        "--dump-log", metavar="PATH", help="write the event log as JSONL"
    )
    pz.add_argument(
        "--faults",
        choices=BUILTIN_SCHEDULES,
        help="sanitize under this fault schedule (ROCoCoTM or ClusterTM only)",
    )
    pz.add_argument("--fault-seed", type=int, default=0)
    pz.set_defaults(func=_cmd_sanitize)

    def add_observed_args(sub_parser, default_scale: float) -> None:
        sub_parser.add_argument("workload", help="workload name (see `repro list`)")
        sub_parser.add_argument("backend", help="backend name, case-insensitive")
        sub_parser.add_argument("--threads", type=int, default=4)
        sub_parser.add_argument("--scale", type=float, default=default_scale)
        sub_parser.add_argument("--seed", type=int, default=1)
        sub_parser.add_argument(
            "--faults",
            choices=BUILTIN_SCHEDULES,
            help="inject this fault schedule (ROCoCoTM or ClusterTM only)",
        )
        sub_parser.add_argument("--fault-seed", type=int, default=0)
        sub_parser.add_argument(
            "--shards",
            type=int,
            default=_env_default("REPRO_SHARDS", int) or 1,
            help="shard count for the ClusterTM backend (env REPRO_SHARDS)",
        )
        sub_parser.add_argument(
            "--no-verify",
            action="store_true",
            help="skip the workload's final-state invariant check",
        )

    pt = sub.add_parser(
        "trace",
        help="record one run as Chrome trace-event JSON (ui.perfetto.dev)",
    )
    add_observed_args(pt, default_scale=0.25)
    pt.add_argument(
        "--out", default="trace.json", help="output path (default trace.json)"
    )
    pt.add_argument(
        "--no-detail",
        action="store_true",
        help="omit per-operation read/write markers (smaller trace)",
    )
    pt.set_defaults(func=_cmd_trace)

    pm = sub.add_parser(
        "metrics",
        help="run one cell with the metrics registry attached, print the snapshot",
    )
    add_observed_args(pm, default_scale=0.25)
    pm.add_argument(
        "--json", action="store_true", help="print the snapshot as JSON"
    )
    pm.add_argument("--out", metavar="PATH", help="also write the snapshot to PATH")
    pm.set_defaults(func=_cmd_metrics)

    pa = sub.add_parser(
        "analyze",
        help="static contract analyzer (TM001-TM106; exit 1 on findings)",
    )
    pa.add_argument("paths", nargs="*", default=["src"])
    pa.add_argument(
        "--rules",
        default=None,
        help="rule selection, e.g. TM101 or TM001-TM004,TM103 (default: all)",
    )
    pa.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact)",
    )
    pa.add_argument(
        "--baseline", default=None,
        help="baseline file (default: analysis-baseline.json if present)",
    )
    pa.add_argument(
        "--no-baseline", action="store_true",
        help="report baselined findings as failures too",
    )
    pa.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to tolerate today's findings, then exit 0",
    )
    pa.add_argument(
        "--cache", default=None, metavar="PATH",
        help="memoize results at PATH keyed on the repo source fingerprint",
    )
    pa.set_defaults(func=_cmd_analyze)

    pl = sub.add_parser(
        "lint",
        help="deprecated alias for `analyze --rules TM001-TM004`",
    )
    pl.add_argument("paths", nargs="*", default=["src"])
    pl.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as bail:
        # Commands bail out with SystemExit("message") or a code;
        # normalize both to a return value so callers (and tests) see
        # exit codes, not exceptions, for every post-parse failure.
        if bail.code is None:
            return 0
        if isinstance(bail.code, int):
            return bail.code
        print(bail.code, file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover
        return 130
    except BrokenPipeError:  # pragma: no cover - e.g. `repro list | head`
        # Downstream closed the pipe; not an error on our side.  Point
        # stdout at devnull so the interpreter's flush-at-exit doesn't
        # raise a second time, and use the conventional SIGPIPE code.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except Exception as failure:
        print(f"repro: error: {type(failure).__name__}: {failure}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
