"""Bit vectors on Python big integers.

The FPGA implementation of ROCoCo (section 4.2) manipulates W-bit
vectors and a W x W bit matrix in single cycles.  Python integers give
us the same bit-level parallelism semantically: AND/OR/shift act on
all bits at once, so the code below is a direct transcription of the
hardware datapath rather than a loop-per-bit emulation.

Bit *i* of a vector corresponds to slot *i* (a transaction slot in the
sliding window or an index into the committed prefix).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class BitVec:
    """A fixed-width little-endian bit vector."""

    __slots__ = ("width", "bits")

    def __init__(self, width: int, bits: int = 0):
        if width < 0:
            raise ValueError("width must be non-negative")
        self.width = width
        self.bits = bits & self.mask(width)

    @staticmethod
    def mask(width: int) -> int:
        return (1 << width) - 1

    @classmethod
    def from_indices(cls, width: int, indices: Iterable[int]) -> "BitVec":
        bits = 0
        for i in indices:
            if not 0 <= i < width:
                raise IndexError(f"bit {i} out of range for width {width}")
            bits |= 1 << i
        return cls(width, bits)

    @classmethod
    def ones(cls, width: int) -> "BitVec":
        return cls(width, cls.mask(width))

    # ------------------------------------------------------------------
    # Single-bit access
    # ------------------------------------------------------------------
    def get(self, i: int) -> bool:
        self._check(i)
        return bool(self.bits >> i & 1)

    def set(self, i: int, value: bool = True) -> None:
        self._check(i)
        if value:
            self.bits |= 1 << i
        else:
            self.bits &= ~(1 << i)

    def _check(self, i: int) -> None:
        if not 0 <= i < self.width:
            raise IndexError(f"bit {i} out of range for width {self.width}")

    # ------------------------------------------------------------------
    # Whole-vector (single-cycle) operations
    # ------------------------------------------------------------------
    def __and__(self, other: "BitVec") -> "BitVec":
        self._match(other)
        return BitVec(self.width, self.bits & other.bits)

    def __or__(self, other: "BitVec") -> "BitVec":
        self._match(other)
        return BitVec(self.width, self.bits | other.bits)

    def __xor__(self, other: "BitVec") -> "BitVec":
        self._match(other)
        return BitVec(self.width, self.bits ^ other.bits)

    def __invert__(self) -> "BitVec":
        return BitVec(self.width, ~self.bits)

    def _match(self, other: "BitVec") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    def any(self) -> bool:
        """The wide-OR reduction the hardware uses for cycle detection."""
        return self.bits != 0

    def popcount(self) -> int:
        return self.bits.bit_count()

    def shifted_in(self, value: bool) -> "BitVec":
        """Shift left by one slot and insert *value* at slot 0.

        Models the shift-register behaviour of the sliding window: the
        bit for the oldest slot (width-1) falls off.
        """
        return BitVec(self.width, (self.bits << 1) | int(value))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def indices(self) -> List[int]:
        out, bits, i = [], self.bits, 0
        while bits:
            if bits & 1:
                out.append(i)
            bits >>= 1
            i += 1
        return out

    def __iter__(self) -> Iterator[bool]:
        for i in range(self.width):
            yield bool(self.bits >> i & 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVec):
            return NotImplemented
        return self.width == other.width and self.bits == other.bits

    def __hash__(self) -> int:
        return hash((self.width, self.bits))

    def __len__(self) -> int:
        return self.width

    def __repr__(self) -> str:
        body = "".join("1" if b else "0" for b in self)
        return f"BitVec({self.width}, 0b{body[::-1] or '0'})"
