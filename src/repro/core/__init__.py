"""The ROCoCo algorithm (paper section 4) — the primary contribution.

Layers, bottom-up:

* :class:`BitVec` / :class:`BitMatrix` — the bit-parallel datapath
  (Python big-ints standing in for the FPGA's wide registers).
* :class:`ReachabilityClosure` — incremental transitive closure with
  O(1)-depth cycle detection (Warshall's fact + its dual, Fig. 4).
* :class:`RococoValidator` — footprint-level OCC validation over an
  unbounded committed set (used by the Fig. 9 experiments).
* :class:`SlidingWindowValidator` — the bounded W-slot variant the
  FPGA implements (Fig. 5), with window-overflow aborts.
* :class:`BatchRococoValidator` — the §7 future-work extension: a
  non-greedy validator with a global view over each batch.
"""

from .batch import BatchOutcome, BatchRococoValidator
from .bitmatrix import BitMatrix
from .bitvec import BitVec
from .reachability import ReachabilityClosure, ValidationResult
from .rococo import Decision, Footprint, RococoValidator, tocc_would_abort
from .window import DEFAULT_WINDOW, SlidingWindowValidator, WindowMatrix

__all__ = [
    "BatchOutcome",
    "BatchRococoValidator",
    "BitMatrix",
    "BitVec",
    "DEFAULT_WINDOW",
    "Decision",
    "Footprint",
    "ReachabilityClosure",
    "RococoValidator",
    "SlidingWindowValidator",
    "WindowMatrix",
    "ValidationResult",
    "tocc_would_abort",
]
