"""The ROCoCo validator over transaction footprints.

This module layers the dependency-edge extraction of an OCC validation
phase on top of :class:`ReachabilityClosure`.  A candidate transaction
arrives with its read set, write set and *snapshot index* — the number
of committed transactions whose updates it observed (the CPU side's
``ValidTS``; eager detection guarantees reads form a consistent
snapshot at that point).  Edges to each committed transaction ``t_i``
follow section 3.1's rules:

* ``t_i`` committed **within** the snapshot and wrote something ``t``
  read — RAW, so ``t_i -> t`` (backward);
* ``t_i`` committed **after** the snapshot and wrote something ``t``
  read — ``t`` read the previous version, WAR, so ``t -> t_i``
  (forward).  This is the edge that makes TOCC abort (``t`` would have
  to serialize *before* an already-committed transaction); ROCoCo
  commits it whenever no cycle closes.
* ``t`` writes something ``t_i`` read or wrote — WAR / WAW, so
  ``t_i -> t`` (backward; ``t_i`` is already committed and read/wrote
  the pre-``t`` version).

A read-only transaction can never acquire an incoming edge from beyond
its snapshot nor any outgoing obligation, so it commits without
validation — the CPU-side fast path of section 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, List, Optional, Tuple

from .reachability import ReachabilityClosure

Address = Hashable


@dataclass(frozen=True)
class Footprint:
    """The memory footprint a transaction submits for validation."""

    read_set: FrozenSet[Address]
    write_set: FrozenSet[Address]
    #: committed transactions with commit index < snapshot observed.
    snapshot: int
    label: Hashable = None

    @staticmethod
    def of(
        reads: Iterable[Address],
        writes: Iterable[Address],
        snapshot: int,
        label: Hashable = None,
    ) -> "Footprint":
        return Footprint(frozenset(reads), frozenset(writes), snapshot, label)

    @property
    def is_read_only(self) -> bool:
        return not self.write_set


@dataclass(frozen=True)
class Decision:
    """Validator verdict for one transaction."""

    committed: bool
    #: why an abort happened: None, "cycle", or "window-overflow".
    reason: Optional[str] = None
    #: index in commit order when committed (read-only txns get -1).
    commit_index: int = -1
    forward: int = 0
    backward: int = 0


class RococoValidator:
    """Unbounded centralized ROCoCo validation (sections 4.1 and 5.3).

    The validator is *greedy*: it commits any transaction that does not
    close a cycle with the already-committed set, which the paper notes
    may occasionally sacrifice future transactions (section 4.1).
    """

    def __init__(self) -> None:
        self.closure = ReachabilityClosure()
        self._reads: List[FrozenSet[Address]] = []
        self._writes: List[FrozenSet[Address]] = []
        self.stats_commits = 0
        self.stats_aborts = 0
        self.stats_read_only = 0

    @property
    def committed_count(self) -> int:
        return len(self._reads)

    def edges(self, fp: Footprint) -> Tuple[int, int]:
        """Forward/backward edge bitmasks of *fp* vs the committed set."""
        forward = 0
        backward = 0
        for i in range(len(self._reads)):
            bit = 1 << i
            if fp.read_set & self._writes[i]:
                if i < fp.snapshot:
                    backward |= bit
                else:
                    forward |= bit
            if fp.write_set and (
                fp.write_set & self._writes[i] or fp.write_set & self._reads[i]
            ):
                backward |= bit
        return forward, backward

    def submit(self, fp: Footprint) -> Decision:
        """Validate *fp*; commit it into the closure when acyclic."""
        if fp.is_read_only:
            self.stats_read_only += 1
            return Decision(committed=True)

        forward, backward = self.edges(fp)
        result = self.closure.validate(forward, backward)
        if not result.ok:
            self.stats_aborts += 1
            return Decision(False, "cycle", forward=forward, backward=backward)

        index = self.closure.commit(result, label=fp.label)
        self._reads.append(fp.read_set)
        self._writes.append(fp.write_set)
        self.stats_commits += 1
        return Decision(True, commit_index=index, forward=forward, backward=backward)

    def serialization_order(self) -> List[Hashable]:
        """A serial-equivalent order of the committed transactions.

        Unlike TOCC, commit order is *not* the serial order here; the
        witness is any topological order of the committed DAG, which we
        reconstruct from the closure (a DAG's closure is itself
        acyclic off the diagonal).
        """
        n = len(self.closure)
        labels = self.closure.labels
        # Sort by the number of transactions each one reaches,
        # descending: in a closure of a DAG, u reaches a strict
        # superset of what its successors reach, so this is a valid
        # topological order (ties are unrelated transactions).
        order = sorted(range(n), key=lambda i: -bin(self.closure.rows[i]).count("1"))
        return [labels[i] for i in order]


def tocc_would_abort(fp: Footprint, validator: RococoValidator) -> bool:
    """Would a commit-time-timestamp TOCC (LSA-like) abort this txn?

    TOCC assigns the candidate the largest timestamp, so any *forward*
    edge — an already-committed transaction that must serialize after
    the candidate — violates the timestamp order.  Used by the Fig. 9
    harness to count ROCoCo's saved aborts without re-running traces.
    """
    forward, _ = validator.edges(fp)
    return forward != 0
