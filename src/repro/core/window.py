"""The sliding-window ROCoCo validator (section 4.2, Fig. 5).

Hardware cannot hold an unbounded reachability matrix, so the FPGA
keeps bookkeeping for only the W most recent committed (writing)
transactions.  Two consequences, both modelled here:

* **Window overflow** — when ``t_{k+1}`` commits, the bookkeeping for
  ``t_{k-W}`` is discarded; any transaction that *neglects the updates*
  of an evicted transaction (its snapshot predates the window) must
  abort, because its forward edges to the evicted region can no longer
  be tracked.
* **Settled history** — the closure may record that a still-resident
  transaction ``w`` *reaches* the transaction being evicted (``w``
  committed later but serializes earlier).  After eviction that path is
  unrepresentable, so ``w`` carries a sticky *taint* bit meaning
  "reaches settled history".  A candidate whose proceeding vector hits
  a tainted slot is conservatively aborted: settled history is pinned
  before all future transactions in the serialization witness, so
  reaching it would close a potential cycle we can no longer check.
  (With W = 64 and 28 threads such chains are rare; the paper's
  evaluation never observed related livelock.)

The window variant therefore commits a subset of what the unbounded
validator of :mod:`repro.core.rococo` commits on the same stream — a
property the test-suite checks.

:class:`WindowMatrix` is the bare matrix datapath (what the FPGA's 2D
registers + taint register implement); :class:`SlidingWindowValidator`
layers exact-footprint edge extraction on top for algorithm-level use.
The hardware model in :mod:`repro.hw` layers *signature-based* edge
extraction on the same matrix instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Tuple

from .rococo import Address, Decision, Footprint

DEFAULT_WINDOW = 64


class WindowMatrix:
    """W-slot reachability matrix with shift-out eviction and taint.

    Slots are numbered oldest-first; ``rows[i]`` bit ``j`` means slot
    *i* reaches slot *j*.  The taint mask marks slots that reach
    settled (evicted) history.
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must hold at least one transaction")
        self.window = window
        self._rows: List[int] = []
        #: exact transpose of ``_rows`` (``cols[j]`` bit *i* means slot
        #: *i* reaches slot *j*), maintained so the backward
        #: matrix-vector product and the eviction-time "who reaches
        #: slot 0" scan iterate only *set* bits instead of all W slots.
        self._cols: List[int] = []
        self._taint: int = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def taint(self) -> int:
        return self._taint

    def reaches(self, i: int, j: int) -> bool:
        return bool(self._rows[i] >> j & 1)

    # ------------------------------------------------------------------
    def probe(self, forward: int, backward: int) -> Tuple[bool, int, int]:
        """(ok, proceeding, succeeding) for candidate edge vectors.

        ``ok`` is False when a cycle closes (``p & s``) or when the
        candidate reaches tainted (settled) history.
        """
        proceeding = forward | self._mv_transposed(forward)
        succeeding = backward | self._mv(backward)
        ok = (proceeding & succeeding) == 0 and (proceeding & self._taint) == 0
        return ok, proceeding, succeeding

    def commit(self, proceeding: int, succeeding: int) -> bool:
        """Insert a validated candidate as the newest slot.

        Returns True if an eviction happened (the window was full).
        Rows are updated by iterating only the *set* bits of the
        succeeding vector (usually sparse under low contention).
        """
        k = len(self._rows)
        new_row = proceeding | (1 << k)
        bits = succeeding
        while bits:
            low = bits & -bits
            self._rows[low.bit_length() - 1] |= new_row
            bits ^= low
        self._rows.append(new_row)
        self._cols.append(0)
        incoming = succeeding | (1 << k)
        bits = new_row
        while bits:
            low = bits & -bits
            self._cols[low.bit_length() - 1] |= incoming
            bits ^= low
        if len(self._rows) > self.window:
            self._evict_oldest()
            return True
        return False

    def _evict_oldest(self) -> None:
        """Discard slot 0 (``h_{W-1}`` in Fig. 5) and renumber.

        Residents that reach the evicted transaction become tainted —
        exactly the set bits of the evicted slot's *column* — and
        existing taint shifts down with the renumbering.
        """
        evicted_reachers = self._cols[0] >> 1
        self._rows = [row >> 1 for row in self._rows[1:]]
        self._cols = [col >> 1 for col in self._cols[1:]]
        self._taint = (self._taint >> 1) | evicted_reachers

    # ------------------------------------------------------------------
    def _mv(self, vec: int) -> int:
        """Slots with an edge *into* ``vec``: an OR over the columns
        of the set bits of ``vec`` (sparse under low contention)."""
        out = 0
        cols = self._cols
        while vec:
            low = vec & -vec
            out |= cols[low.bit_length() - 1]
            vec ^= low
        return out

    def _mv_transposed(self, vec: int) -> int:
        out = 0
        i = 0
        while vec:
            if vec & 1:
                out |= self._rows[i]
            vec >>= 1
            i += 1
        return out


@dataclass
class _Slot:
    """Bookkeeping for one resident committed transaction (an ``h_i``)."""

    label: Hashable
    read_set: FrozenSet[Address]
    write_set: FrozenSet[Address]
    commit_index: int


class SlidingWindowValidator:
    """ROCoCo over the W most recent committed writing transactions."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.matrix = WindowMatrix(window)
        self.window = window
        self._slots: List[_Slot] = []  # oldest first
        self.total_commits = 0  # writing commits ever accepted
        self.stats_commits = 0
        self.stats_read_only = 0
        self.stats_cycle_aborts = 0
        self.stats_overflow_aborts = 0
        self.stats_taint_aborts = 0

    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self._slots)

    @property
    def oldest_commit_index(self) -> int:
        """Commit index of the oldest resident transaction.

        Snapshots older than this "neglect updates" of an evicted
        transaction and must abort.
        """
        return self._slots[0].commit_index if self._slots else 0

    def labels(self) -> List[Hashable]:
        return [s.label for s in self._slots]

    # ------------------------------------------------------------------
    def submit(self, fp: Footprint) -> Decision:
        """Validate one transaction.

        ``fp.snapshot`` counts *writing commits* observed, in this
        validator's commit order.
        """
        if fp.is_read_only:
            self.stats_read_only += 1
            return Decision(committed=True)

        if fp.snapshot < self.oldest_commit_index:
            self.stats_overflow_aborts += 1
            return Decision(False, "window-overflow")

        forward, backward = self._edges(fp)
        ok, proceeding, succeeding = self.matrix.probe(forward, backward)
        if not ok:
            if proceeding & succeeding:
                self.stats_cycle_aborts += 1
            else:
                self.stats_taint_aborts += 1
            return Decision(False, "cycle", forward=forward, backward=backward)

        self.matrix.commit(proceeding, succeeding)
        self._slots.append(
            _Slot(fp.label, fp.read_set, fp.write_set, self.total_commits)
        )
        if len(self._slots) > self.window:
            del self._slots[0]
        self.total_commits += 1
        self.stats_commits += 1
        return Decision(
            True,
            commit_index=self.total_commits - 1,
            forward=forward,
            backward=backward,
        )

    # ------------------------------------------------------------------
    def _edges(self, fp: Footprint) -> Tuple[int, int]:
        forward = 0
        backward = 0
        for i, slot in enumerate(self._slots):
            bit = 1 << i
            if fp.read_set & slot.write_set:
                if slot.commit_index < fp.snapshot:
                    backward |= bit
                else:
                    forward |= bit
            if fp.write_set & slot.write_set or fp.write_set & slot.read_set:
                backward |= bit
        return forward, backward

    # ------------------------------------------------------------------
    def reaches(self, i: int, j: int) -> bool:
        """Does resident slot *i* reach resident slot *j*?"""
        return self.matrix.reaches(i, j)

    @property
    def stats_aborts(self) -> int:
        return self.stats_cycle_aborts + self.stats_overflow_aborts + self.stats_taint_aborts
