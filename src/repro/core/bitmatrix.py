"""Square bit matrices stored as per-row big integers.

The reachability matrix R of the ROCoCo manager (section 4.1, Fig. 4)
is a square boolean matrix.  The hardware keeps it in 2D registers so
that a whole row, a whole column, or the whole matrix can be read and
rewritten in one cycle.  We store one Python int per row; row
operations are single big-int operations and column operations gather
one bit per row — the transposition cost the paper says makes the
algorithm impractical on CPUs, and which we also expose explicitly via
:meth:`column` so the distinction survives in the model.
"""

from __future__ import annotations

from typing import Iterable, List

from .bitvec import BitVec


class BitMatrix:
    """An n x n bit matrix; entry (i, j) is row i, bit j."""

    __slots__ = ("size", "rows")

    def __init__(self, size: int, rows: Iterable[int] = ()):
        if size < 0:
            raise ValueError("size must be non-negative")
        self.size = size
        row_list = list(rows)
        if row_list and len(row_list) != size:
            raise ValueError(f"expected {size} rows, got {len(row_list)}")
        mask = BitVec.mask(size)
        self.rows: List[int] = [r & mask for r in row_list] or [0] * size

    @classmethod
    def identity(cls, size: int) -> "BitMatrix":
        return cls(size, (1 << i for i in range(size)))

    def copy(self) -> "BitMatrix":
        return BitMatrix(self.size, self.rows)

    # ------------------------------------------------------------------
    # Element / row / column access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> bool:
        self._check(i)
        self._check(j)
        return bool(self.rows[i] >> j & 1)

    def set(self, i: int, j: int, value: bool = True) -> None:
        self._check(i)
        self._check(j)
        if value:
            self.rows[i] |= 1 << j
        else:
            self.rows[i] &= ~(1 << j)

    def row(self, i: int) -> BitVec:
        self._check(i)
        return BitVec(self.size, self.rows[i])

    def column(self, j: int) -> BitVec:
        """Gather column *j*.

        On the FPGA's 2D registers this is free; on a RAM-based CPU it
        costs a pass over all rows — the transposition penalty cited in
        section 4.2.
        """
        self._check(j)
        bits = 0
        for i, row in enumerate(self.rows):
            bits |= (row >> j & 1) << i
        return BitVec(self.size, bits)

    def set_row(self, i: int, vec: BitVec) -> None:
        self._check(i)
        self._match(vec)
        self.rows[i] = vec.bits

    def set_column(self, j: int, vec: BitVec) -> None:
        self._check(j)
        self._match(vec)
        for i in range(self.size):
            if vec.bits >> i & 1:
                self.rows[i] |= 1 << j
            else:
                self.rows[i] &= ~(1 << j)

    def _check(self, i: int) -> None:
        if not 0 <= i < self.size:
            raise IndexError(f"index {i} out of range for size {self.size}")

    def _match(self, vec: BitVec) -> None:
        if vec.width != self.size:
            raise ValueError(f"vector width {vec.width} != matrix size {self.size}")

    # ------------------------------------------------------------------
    # Matrix-vector products over boolean algebra (OR of ANDs)
    # ------------------------------------------------------------------
    def mv(self, vec: BitVec) -> BitVec:
        """Boolean matrix-vector product: out[i] = OR_j (R[i][j] & v[j]).

        This is the ``R_k x b`` term of the succeeding-vector equation
        in section 4.1.  Each output bit is one wide-AND + wide-OR —
        one LUT level in hardware.
        """
        self._match(vec)
        bits = 0
        for i, row in enumerate(self.rows):
            if row & vec.bits:
                bits |= 1 << i
        return BitVec(self.size, bits)

    def mv_transposed(self, vec: BitVec) -> BitVec:
        """Product with the transpose: out[j] = OR_i (R[i][j] & v[i]).

        The ``R_k^T x f`` term of the proceeding-vector equation.
        Computed without materializing the transpose by scattering each
        selected row, mirroring the column-wise wiring of the 2D
        registers.
        """
        self._match(vec)
        bits = 0
        remaining = vec.bits
        i = 0
        while remaining:
            if remaining & 1:
                bits |= self.rows[i]
            remaining >>= 1
            i += 1
        return BitVec(self.size, bits)

    def transpose(self) -> "BitMatrix":
        out = BitMatrix(self.size)
        for i in range(self.size):
            out.set_column(i, self.row(i))
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self.size == other.size and self.rows == other.rows

    def __hash__(self):  # pragma: no cover - mutable
        raise TypeError("BitMatrix is unhashable (mutable)")

    def __repr__(self) -> str:
        lines = []
        for i in range(self.size):
            lines.append("".join("1" if self.get(i, j) else "0" for j in range(self.size)))
        return f"BitMatrix({self.size}, [{', '.join(lines)}])"
