"""Incremental transitive closure: the heart of ROCoCo (section 4.1).

ROCoCo validates acyclicity of the R/W-dependency relation without
timestamps by maintaining the *reachability matrix* R of the committed
transaction DAG and extending it one transaction at a time:

* **Warshall's fact** (forward): ``t`` reaches ``t_i`` iff
  ``t -> t_i`` directly, or ``t -> t_j`` and ``t_j`` reaches ``t_i``.
  Vectorized: ``p = f | R^T f`` (the *proceeding* vector).
* **Dual fact** (backward): ``t`` is reachable from ``t_i`` iff
  ``t_i -> t`` directly, or ``t_i`` reaches some ``t_j`` with
  ``t_j -> t``.  Vectorized: ``s = b | R b`` (the *succeeding* vector).
* **Cycle test**: committing ``t`` would close a cycle iff some
  committed ``t_i`` both precedes and succeeds ``t``:
  ``p & s != 0`` — an O(1)-depth wide AND/OR in hardware.
* **Closure update** on commit: ``p`` and ``s`` become the new row and
  column, and every old entry picks up the new paths *through* t:
  ``r[i][j] |= s[i] & p[j]`` (an outer product, one cycle in the 2D
  registers).

Note on the paper's notation: the inline formulas in section 4.1 index
``r[i][j]`` with the opposite convention from their own matrix forms
``p = f + R^T f`` / ``s = b + R b``; we follow the matrix forms, which
are the self-consistent ones (and the ones Fig. 4 depicts).

This module implements the *unbounded* validator used for the
algorithmic experiments (Fig. 9); :mod:`repro.core.window` bounds it to
the W-slot sliding window of the FPGA implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating one transaction against the closure."""

    ok: bool
    #: bitmask over committed indices that the candidate can reach.
    proceeding: int
    #: bitmask over committed indices that can reach the candidate.
    succeeding: int

    @property
    def cycle_mask(self) -> int:
        """Committed indices that witness a would-be cycle (0 iff ok)."""
        return self.proceeding & self.succeeding


class ReachabilityClosure:
    """Grow-only transitive closure over committed transactions.

    Rows are Python big-ints: bit *j* of ``rows[i]`` is 1 iff
    transaction ``i`` reaches transaction ``j`` (indices are commit
    order).  The diagonal is 1 — "a vertex can always reach itself"
    (section 4.1) — which also makes the cycle test catch direct
    2-cycles through the diagonal-free f/b vectors uniformly.
    """

    def __init__(self) -> None:
        self.rows: List[int] = []
        self._labels: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def labels(self) -> List[Hashable]:
        return list(self._labels)

    def index_of(self, label: Hashable) -> int:
        return self._index[label]

    def reaches(self, i: int, j: int) -> bool:
        return bool(self.rows[i] >> j & 1)

    # ------------------------------------------------------------------
    # Validation (Fig. 4 (a))
    # ------------------------------------------------------------------
    def validate(self, forward: int, backward: int) -> ValidationResult:
        """Cycle-check a candidate against the committed prefix.

        ``forward`` has bit *i* set iff the candidate has an edge *to*
        committed transaction *i* (``t ->_rw t_i``, e.g. t anti-depends
        on a read of t_i); ``backward`` has bit *i* set iff committed
        transaction *i* has an edge to the candidate.
        """
        proceeding = forward | self._mv_transposed(forward)
        succeeding = backward | self._mv(backward)
        return ValidationResult(
            ok=(proceeding & succeeding) == 0,
            proceeding=proceeding,
            succeeding=succeeding,
        )

    def _mv(self, vec: int) -> int:
        """Boolean R x vec: bit i set iff row i intersects vec."""
        out = 0
        for i, row in enumerate(self.rows):
            if row & vec:
                out |= 1 << i
        return out

    def _mv_transposed(self, vec: int) -> int:
        """Boolean R^T x vec: OR of the rows selected by vec."""
        out = 0
        i = 0
        while vec:
            if vec & 1:
                out |= self.rows[i]
            vec >>= 1
            i += 1
        return out

    # ------------------------------------------------------------------
    # Commit (Fig. 4 (b))
    # ------------------------------------------------------------------
    def commit(self, result: ValidationResult, label: Optional[Hashable] = None) -> int:
        """Extend the closure with a validated transaction.

        Returns the new transaction's index.  Raises ValueError when
        the result carries a cycle — callers must abort instead.
        """
        if not result.ok:
            raise ValueError("cannot commit a transaction that closes a cycle")
        k = len(self.rows)
        p, s = result.proceeding, result.succeeding

        # Old entries learn the paths through the newcomer.
        for i in range(k):
            if s >> i & 1:
                self.rows[i] |= p
        # Column k: everyone in s now reaches t.
        for i in range(k):
            if s >> i & 1:
                self.rows[i] |= 1 << k
        # Row k: t reaches everyone in p, plus itself.
        self.rows.append(p | (1 << k))

        if label is None:
            label = k
        self._labels.append(label)
        self._index[label] = k
        return k

    # ------------------------------------------------------------------
    # Convenience for tests / trace-level callers
    # ------------------------------------------------------------------
    def validate_edges(
        self,
        forward_labels: Iterable[Hashable],
        backward_labels: Iterable[Hashable],
    ) -> ValidationResult:
        """Validation with label sets instead of bitmasks."""
        forward = 0
        for lbl in forward_labels:
            forward |= 1 << self._index[lbl]
        backward = 0
        for lbl in backward_labels:
            backward |= 1 << self._index[lbl]
        return self.validate(forward, backward)

    def reachable_set(self, label: Hashable) -> Set[Hashable]:
        """Labels reachable from *label* (including itself)."""
        row = self.rows[self._index[label]]
        out = set()
        i = 0
        while row:
            if row & 1:
                out.add(self._labels[i])
            row >>= 1
            i += 1
        return out
