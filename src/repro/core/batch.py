"""Non-greedy batch validation (§4.1's deficiency, §7's future work).

The pipelined validator is *greedy*: "it greedily commits a
transaction if it does not cause cycles with regard to previous
transactions, without considering future transactions.  There exists
cases in which committing a transaction may cause more future
transactions to abort.  Optimizations on ROCoCo are possible if the
validation phase has a global view."

This module implements that optimization for a *batch* of concurrently
validated transactions (e.g. everything queued in one validation
window).  Within a batch nobody has observed anybody else's writes,
so the only intra-batch constraints are reader-precedes-writer edges;
combined with the usual forward/backward edges against the committed
prefix, the batch's dependency digraph is explicit, and choosing which
transactions to commit is choosing a maximum induced acyclic subgraph
— NP-hard in general, so we use a cycle-breaking heuristic (repeatedly
drop the most cycle-implicated vertex) and never do worse than the
greedy arrival order (the result is the better of the two selections).

The canonical win: a "hub" transaction that mutually conflicts with
several otherwise-independent peers.  Greedy commits the hub first and
aborts every peer; the global view sacrifices the hub and commits all
the peers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .rococo import Footprint, RococoValidator


class BatchOutcome:
    """Result of validating one batch."""

    def __init__(self, committed: List[Footprint], aborted: List[Footprint]):
        self.committed = committed
        self.aborted = aborted

    @property
    def commit_count(self) -> int:
        return len(self.committed)


class BatchRococoValidator:
    """ROCoCo with a global view over each validation batch.

    Maintains the same unbounded reachability closure as
    :class:`RococoValidator`; ``submit_batch`` decides a whole batch at
    once and folds the chosen subset into the closure in a cycle-free
    order.
    """

    def __init__(self) -> None:
        self._inner = RococoValidator()
        self.stats_commits = 0
        self.stats_aborts = 0

    @property
    def committed_count(self) -> int:
        return self._inner.committed_count

    # ------------------------------------------------------------------
    def submit_batch(self, batch: Sequence[Footprint]) -> BatchOutcome:
        writers = [fp for fp in batch if not fp.is_read_only]
        readers = [fp for fp in batch if fp.is_read_only]

        keep_greedy = self._greedy_selection(writers)
        keep_global = self._global_selection(writers)
        keep = keep_global if len(keep_global) > len(keep_greedy) else keep_greedy

        committed: List[Footprint] = list(readers)  # read-only: free
        aborted: List[Footprint] = []
        for index in self._topological(writers, keep):
            decision = self._inner.submit(writers[index])
            if decision.committed:
                committed.append(writers[index])
            else:
                # The heuristic checks candidates against history one
                # at a time; a *joint* cycle threaded through old
                # committed transactions can still surface here.  The
                # inner validator is the safety authority: drop the
                # transaction.
                keep.discard(index)
                aborted.append(writers[index])
        for i, fp in enumerate(writers):
            if i not in keep:
                aborted.append(fp)
        self.stats_commits += len(committed)
        self.stats_aborts += len(aborted)
        return BatchOutcome(committed, aborted)

    # ------------------------------------------------------------------
    def _edges(self, writers: Sequence[Footprint]) -> Set[Tuple[int, int]]:
        """Intra-batch reader-precedes-writer edges (i -> j)."""
        edges = set()
        for i, a in enumerate(writers):
            for j, b in enumerate(writers):
                if i != j and a.read_set & b.write_set:
                    edges.add((i, j))
        return edges

    def _conflicts_with_history(self, fp: Footprint) -> bool:
        """Would *fp* alone close a cycle with the committed prefix?"""
        forward, backward = self._inner.edges(fp)
        result = self._inner.closure.validate(forward, backward)
        return not result.ok

    def _greedy_selection(self, writers: Sequence[Footprint]) -> Set[int]:
        """Arrival-order selection: what the pipelined validator does."""
        edges = self._edges(writers)
        keep: Set[int] = set()
        for i in range(len(writers)):
            if self._conflicts_with_history(writers[i]):
                continue
            candidate = keep | {i}
            if self._acyclic(candidate, edges):
                keep.add(i)
        return keep

    def _global_selection(self, writers: Sequence[Footprint]) -> Set[int]:
        """Cycle-breaking: drop the most cycle-implicated vertices."""
        keep = {
            i
            for i in range(len(writers))
            if not self._conflicts_with_history(writers[i])
        }
        edges = self._edges(writers)
        while True:
            cycle_nodes = self._nodes_on_cycles(keep, edges)
            if not cycle_nodes:
                return keep
            # Drop the vertex with the most cycle-internal edges.
            def weight(v):
                return sum(
                    1
                    for (a, b) in edges
                    if (a == v and b in cycle_nodes) or (b == v and a in cycle_nodes)
                )

            keep.discard(max(cycle_nodes, key=lambda v: (weight(v), v)))

    # ------------------------------------------------------------------
    @staticmethod
    def _acyclic(nodes: Set[int], edges: Set[Tuple[int, int]]) -> bool:
        return not BatchRococoValidator._nodes_on_cycles(nodes, edges)

    @staticmethod
    def _nodes_on_cycles(nodes: Set[int], edges: Set[Tuple[int, int]]) -> Set[int]:
        """Nodes inside non-trivial strongly connected components."""
        adjacency: Dict[int, List[int]] = {n: [] for n in nodes}
        for a, b in edges:
            if a in nodes and b in nodes:
                adjacency[a].append(b)
        # Tarjan's SCC, iterative.
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        counter = [0]
        result: Set[int] = set()

        for root in nodes:
            if root in index:
                continue
            work = [(root, iter(adjacency[root]))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(adjacency[nxt])))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        result.update(component)
        return result

    @staticmethod
    def _topological(
        writers: Sequence[Footprint], keep: Set[int]
    ) -> List[int]:
        """Kept indices in a cycle-free commit order."""
        edges = set()
        for i in keep:
            for j in keep:
                if i != j and writers[i].read_set & writers[j].write_set:
                    edges.add((i, j))
        indegree = {i: 0 for i in keep}
        for _, b in edges:
            indegree[b] += 1
        ready = sorted(i for i in keep if indegree[i] == 0)
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            changed = False
            for a, b in edges:
                if a == node:
                    indegree[b] -= 1
                    if indegree[b] == 0:
                        ready.append(b)
                        changed = True
            if changed:
                ready.sort()
        if len(order) != len(keep):
            raise AssertionError("selection was not acyclic")
        return order
